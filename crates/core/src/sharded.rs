//! The sharded ReFloat operator: one encoded shard per accelerator chip.
//!
//! [`ShardedReFloatMatrix`] splits a matrix into contiguous block-row bands (the
//! partitioner of `refloat_sparse::shard`), encodes each band as its own
//! [`ReFloatMatrix`], and applies the bands concurrently — each shard owns a disjoint
//! output range, exactly like the chips of a multi-chip accelerator each producing one
//! band of the result vector for the host to gather.
//!
//! # Determinism contract
//!
//! A sharded apply is **bitwise identical** to the unsharded [`ReFloatMatrix::apply`]
//! for every shard count:
//!
//! * shard cuts sit on `2^b` block-row boundaries, so each band re-blocks into exactly
//!   the blocks the unsharded matrix produces (same entries, same block-column order);
//! * each shard's vector converter re-encodes the *full* input vector with the same
//!   per-segment bases the unsharded converter chooses (conversion is a pure function
//!   of `x` and the format);
//! * every output row is accumulated only by its own shard, in the unsharded block
//!   order — the inter-shard "reduction" is a gather of disjoint bands, which reorders
//!   nothing.
//!
//! The tests below enforce the contract for 1/2/4/8 shards, down to solver iterates.

use std::ops::Range;

use crate::format::ReFloatConfig;
use crate::matrix::ReFloatMatrix;
use refloat_solvers::LinearOperator;
use refloat_sparse::{block_row_shards, extract_row_range, CsrMatrix};

/// One chip's slice of the operator: a contiguous row band and its encoding.
#[derive(Debug, Clone)]
pub struct OperatorShard {
    /// Global row range this shard produces.
    pub rows: Range<usize>,
    /// The shard's encoded operator (`rows.len() × ncols`).
    pub op: ReFloatMatrix,
}

/// A ReFloat operator partitioned into block-row shards, one per chip.
#[derive(Debug, Clone)]
pub struct ShardedReFloatMatrix {
    nrows: usize,
    ncols: usize,
    config: ReFloatConfig,
    shards: Vec<OperatorShard>,
}

impl ShardedReFloatMatrix {
    /// Partitions `a` into at most `shards` nnz-balanced block-row bands and encodes
    /// each band in `config`'s format.
    ///
    /// # Panics
    /// Panics if the partitioner rejects the arguments (invalid `b`, empty matrix).
    pub fn from_csr(a: &CsrMatrix, config: ReFloatConfig, shards: usize) -> Self {
        let parts = block_row_shards(a, config.b, shards)
            .expect("valid blocking exponent from a validated ReFloatConfig");
        let shards = parts
            .into_iter()
            .map(|part| OperatorShard {
                op: ReFloatMatrix::from_csr(&extract_row_range(a, part.rows.clone()), config),
                rows: part.rows,
            })
            .collect();
        ShardedReFloatMatrix {
            nrows: a.nrows(),
            ncols: a.ncols(),
            config,
            shards,
        }
    }

    /// Assembles a sharded operator from pre-encoded bands (e.g. resolved through the
    /// runtime's encoded-matrix cache).
    ///
    /// # Panics
    /// Panics if the bands do not tile `0..nrows` in order or a band's encoding has
    /// the wrong shape or format.
    pub fn from_parts(nrows: usize, ncols: usize, parts: Vec<OperatorShard>) -> Self {
        assert!(
            !parts.is_empty(),
            "sharded operator needs at least one shard"
        );
        assert_eq!(parts[0].rows.start, 0, "shards must start at row 0");
        assert_eq!(
            parts.last().expect("non-empty").rows.end,
            nrows,
            "shards must cover all rows"
        );
        let config = *parts[0].op.config();
        for w in parts.windows(2) {
            assert_eq!(
                w[0].rows.end, w[1].rows.start,
                "shards must be contiguous in row order"
            );
        }
        for part in &parts {
            assert_eq!(
                LinearOperator::nrows(&part.op),
                part.rows.len(),
                "shard encoding rows must match its row range"
            );
            assert_eq!(
                LinearOperator::ncols(&part.op),
                ncols,
                "shard encodings must span all columns"
            );
            assert_eq!(
                part.op.config(),
                &config,
                "all shards must share one format"
            );
        }
        ShardedReFloatMatrix {
            nrows,
            ncols,
            config,
            shards: parts,
        }
    }

    /// The format configuration.
    pub fn config(&self) -> &ReFloatConfig {
        &self.config
    }

    /// Number of shards (chips the operator spans).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in row order.
    pub fn shards(&self) -> &[OperatorShard] {
        &self.shards
    }

    /// Non-empty blocks per shard (= crossbar clusters each chip must hold).
    pub fn shard_blocks(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.op.num_blocks() as u64)
            .collect()
    }

    /// Output rows per shard (= the band each chip ships to the host per SpMV).
    pub fn shard_rows(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.rows.len() as u64).collect()
    }

    /// Total non-empty blocks across shards (equals the unsharded block count: cuts on
    /// block-row boundaries never split or merge blocks).
    pub fn num_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.op.num_blocks()).sum()
    }

    /// Total encoded non-zeros.
    pub fn nnz(&self) -> usize {
        self.shards.iter().map(|s| s.op.nnz()).sum()
    }

    /// Applies all shards, each writing its disjoint output band; shards run on scoped
    /// threads (the last on the calling thread), mirroring chips working in parallel.
    fn apply_sharded(&mut self, x: &[f64], y: &mut [f64]) {
        // Slice y into per-shard bands.
        let mut bands: Vec<&mut [f64]> = Vec::with_capacity(self.shards.len());
        let mut rest = y;
        let mut offset = 0;
        for shard in &self.shards {
            let (band, tail) = rest.split_at_mut(shard.rows.end - offset);
            bands.push(band);
            rest = tail;
            offset = shard.rows.end;
        }
        std::thread::scope(|scope| {
            let mut work = self.shards.iter_mut().zip(bands);
            let last = work.next_back();
            for (shard, band) in work {
                scope.spawn(move || shard.op.apply(x, band));
            }
            if let Some((shard, band)) = last {
                shard.op.apply(x, band);
            }
        });
    }
}

impl LinearOperator for ShardedReFloatMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "sharded apply: x length mismatch");
        assert_eq!(y.len(), self.nrows, "sharded apply: y length mismatch");
        self.apply_sharded(x, y);
    }

    fn apply_batch(&mut self, xs: &[Vec<f64>], ys: &mut [Vec<f64>]) {
        assert_eq!(xs.len(), ys.len(), "apply_batch: X/Y column count mismatch");
        // One pass per column; the shard threads are re-spawned per column but the
        // encodings (the expensive state) are shared across the whole batch.
        for (x, y) in xs.iter().zip(ys.iter_mut()) {
            self.apply(x, y);
        }
    }

    fn name(&self) -> String {
        format!(
            "sharded refloat {} ({} shards, {} blocks, {} nnz)",
            self.config,
            self.num_shards(),
            self.num_blocks(),
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::generators;
    use refloat_solvers::{cg, SolverConfig};

    fn workload() -> CsrMatrix {
        generators::laplacian_2d(24, 24, 0.4).to_csr()
    }

    fn config() -> ReFloatConfig {
        ReFloatConfig::new(4, 3, 8, 3, 8)
    }

    #[test]
    fn sharded_apply_is_bitwise_identical_to_unsharded() {
        let a = workload();
        let x: Vec<f64> = (0..a.ncols())
            .map(|i| ((i * 29 % 23) as f64) / 23.0 - 0.3)
            .collect();
        let mut reference = vec![0.0; a.nrows()];
        ReFloatMatrix::from_csr(&a, config()).apply(&x, &mut reference);
        for shards in [1usize, 2, 4, 8] {
            let mut sharded = ShardedReFloatMatrix::from_csr(&a, config(), shards);
            let mut y = vec![0.0; a.nrows()];
            sharded.apply(&x, &mut y);
            for (i, (u, v)) in reference.iter().zip(y.iter()).enumerate() {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "row {i} differs at {shards} shards: {u} vs {v}"
                );
            }
        }
    }

    #[test]
    fn sharded_cg_iterates_are_bitwise_identical_across_shard_counts() {
        let a = workload();
        let b = vec![1.0; a.nrows()];
        let cfg = SolverConfig::relative(1e-8);
        let reference = cg(&mut ReFloatMatrix::from_csr(&a, config()), &b, &cfg);
        for shards in [2usize, 4, 8] {
            let mut op = ShardedReFloatMatrix::from_csr(&a, config(), shards);
            let r = cg(&mut op, &b, &cfg);
            assert_eq!(r.iterations, reference.iterations);
            for (u, v) in reference.x.iter().zip(r.x.iter()) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn shard_block_totals_match_the_unsharded_operator() {
        let a = workload();
        let whole = ReFloatMatrix::from_csr(&a, config());
        let sharded = ShardedReFloatMatrix::from_csr(&a, config(), 4);
        assert_eq!(sharded.num_blocks(), whole.num_blocks());
        assert_eq!(sharded.nnz(), whole.nnz());
        assert_eq!(
            sharded.shard_blocks().iter().sum::<u64>(),
            whole.num_blocks() as u64
        );
        assert_eq!(sharded.shard_rows().iter().sum::<u64>(), a.nrows() as u64);
    }

    #[test]
    fn batched_apply_matches_columnwise_applies_bitwise() {
        let a = workload();
        let n = a.ncols();
        let xs: Vec<Vec<f64>> = (0..3)
            .map(|k| {
                (0..n)
                    .map(|i| ((i * (7 + k) % 19) as f64) / 19.0 + 0.1)
                    .collect()
            })
            .collect();
        let mut ys = vec![vec![0.0; a.nrows()]; xs.len()];
        let mut op = ShardedReFloatMatrix::from_csr(&a, config(), 3);
        op.apply_batch(&xs, &mut ys);
        for (x, y) in xs.iter().zip(ys.iter()) {
            let mut single = vec![0.0; a.nrows()];
            ShardedReFloatMatrix::from_csr(&a, config(), 3).apply(x, &mut single);
            for (u, v) in single.iter().zip(y.iter()) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn from_parts_validates_the_tiling() {
        let a = workload();
        let sharded = ShardedReFloatMatrix::from_csr(&a, config(), 2);
        let parts: Vec<OperatorShard> = sharded.shards().to_vec();
        let rebuilt = ShardedReFloatMatrix::from_parts(a.nrows(), a.ncols(), parts);
        assert_eq!(rebuilt.num_shards(), 2);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn from_parts_rejects_gaps() {
        let a = workload();
        let sharded = ShardedReFloatMatrix::from_csr(&a, config(), 3);
        let mut parts: Vec<OperatorShard> = sharded.shards().to_vec();
        parts.remove(1);
        let _ = ShardedReFloatMatrix::from_parts(a.nrows(), a.ncols(), parts);
    }
}
