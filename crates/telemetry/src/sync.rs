//! Poison-recovering lock helpers for service paths.
//!
//! The runtime contains job panics with `catch_unwind` (a poisoned job resolves its
//! ticket as `Failed` and the worker keeps serving).  Rust's `Mutex` records such a
//! panic as *poisoning*, and before this module every `.lock().expect("...")` on the
//! shared state turned one already-contained panic into a cascading outage: the next
//! job to touch the same mutex panicked too, and so did every report and metrics
//! snapshot after it.
//!
//! Recovering the guard is sound here because every critical section in this
//! workspace holds its lock across plain in-memory updates only — the expensive,
//! panic-prone work (encoding, format analysis, the solve itself) always runs
//! *outside* the locks, and the in-lock updates (push an entry, bump a counter,
//! flip a flag) cannot be observed half-applied after an unwind at their panic-free
//! boundaries.  A service that can contain a panic must also be able to keep
//! serving afterwards; these helpers make that the default.
//!
//! The panic-in-service-path lint of `refloat-analysis` flags bare
//! `.lock().unwrap()`/`.expect()` in service modules; routing acquisitions through
//! this module is the sanctioned fix.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Acquires `mutex`, recovering the guard if a previous holder panicked.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `condvar`, recovering the re-acquired guard if another holder panicked
/// while this thread slept.
pub fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `condvar` up to `timeout`, recovering the re-acquired guard if another
/// holder panicked while this thread slept.
pub fn wait_timeout<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recovers_from_a_poisoned_mutex() {
        let shared = Arc::new(Mutex::new(7u64));
        let poisoner = Arc::clone(&shared);
        let result = std::thread::spawn(move || {
            let _guard = poisoner.lock().expect("first acquisition");
            panic!("poison the mutex");
        })
        .join();
        assert!(result.is_err(), "the poisoning thread must have panicked");
        assert!(shared.lock().is_err(), "the mutex really is poisoned");
        // The helper still hands out a usable guard.
        let mut guard = lock(&shared);
        *guard += 1;
        assert_eq!(*guard, 8);
    }

    #[test]
    fn wait_and_wait_timeout_return_usable_guards() {
        let mutex = Mutex::new(0u32);
        let condvar = Condvar::new();
        let guard = lock(&mutex);
        let (guard, timed_out) = wait_timeout(&condvar, guard, Duration::from_millis(1));
        assert!(timed_out.timed_out());
        assert_eq!(*guard, 0);
    }
}
