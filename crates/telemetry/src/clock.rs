//! Clock sources for tracing, and the workspace's deterministic-clock contract.
//!
//! # The deterministic-clock contract
//!
//! The runtime reports time in two unrelated currencies, and every field is committed
//! to exactly one of them:
//!
//! * **Wall-clock seconds** — measured on the host with [`std::time::Instant`] (or a
//!   [`Clock`] implementation when tracing).  These fields describe how long the *host
//!   harness* took and vary run to run: `queue_wait_s`, `encode_s`, `solve_s`,
//!   `latency_s` in `JobTelemetry`, every percentile in `RuntimeReport`, and the
//!   `start_s`/`end_s` of every [`TraceEvent`](crate::trace::TraceEvent).  They are
//!   **never** folded into determinism digests.
//! * **Simulated seconds** — derived from the Eq. 2/Eq. 3 cycle model of `reram-sim`
//!   (`SimulatedRun`: `cycles`, `compute_s`, `stream_write_s`, `program_s`,
//!   `reduction_s`, `host_fp64_s`, `total_s`).  These depend only on the matrix, the
//!   format, and the accelerator config — they are bitwise reproducible across runs,
//!   worker counts and machines, and *are* safe to digest.  Chip-phase cycle events
//!   carry simulated seconds in their `detail` strings.
//!
//! Tests that assert byte-identical trace streams must therefore inject a
//! [`ManualClock`] (and a single worker with a FIFO scheduler) so the wall-clock
//! fields become reproducible too; production runs use [`WallClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic source of seconds for trace timestamps.
///
/// Implementations must be cheap and thread-safe: `now_s` is called several times per
/// job on the worker hot path.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Seconds elapsed since the clock's epoch.
    fn now_s(&self) -> f64;
}

/// Wall-clock time relative to the moment the clock was created.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Creates a wall clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// A manually advanced clock for deterministic tests: `now_s` returns whatever the
/// test last [`set`](ManualClock::set); it never moves on its own.
///
/// The value is stored as `f64` bits in an atomic, so a shared `Arc<ManualClock>` can
/// be advanced from the test thread while workers read it.
#[derive(Debug, Default)]
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    /// Creates a manual clock reading 0.0 seconds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current reading, in seconds.
    pub fn set(&self, seconds: f64) {
        self.bits.store(seconds.to_bits(), Ordering::Relaxed);
    }

    /// Advances the current reading by `seconds`.
    pub fn advance(&self, seconds: f64) {
        self.set(self.now_s() + seconds);
    }
}

impl Clock for ManualClock {
    fn now_s(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_s();
        let b = c.now_s();
        assert!(b >= a && a >= 0.0);
    }

    #[test]
    fn manual_clock_only_moves_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_s(), 0.0);
        c.set(1.5);
        assert_eq!(c.now_s(), 1.5);
        c.advance(0.25);
        assert_eq!(c.now_s(), 1.75);
        assert_eq!(c.now_s(), 1.75);
    }
}
