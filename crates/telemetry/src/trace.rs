//! Span/event tracing: typed per-job events collected into a shared [`TraceSink`] and
//! exported as JSON-lines.
//!
//! Workers accumulate the events of one job locally (no contention) and flush them to
//! the sink in a single batch when the job completes, so tracing cost on the hot path
//! is one mutex acquisition per *job*, not per event.  Events are exported sorted by
//! `(job_id, seq)`, which is deterministic for a fixed worker count even though the
//! flush interleaving between workers is not.

use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize, Value};

use crate::clock::{Clock, WallClock};
use crate::sync;

/// What a trace event describes.  One variant per instrumented stage of a job's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Time between submission and a worker dequeuing the job.
    QueueWait,
    /// Instant event: the scheduler handed the job to a worker.
    Dequeue,
    /// Encoded-matrix cache lookup (detail says hit / miss / coalesced).
    CacheLookup,
    /// ReFloat block encoding performed on a cache miss.
    Encode,
    /// The solve itself (all iterations on the simulated accelerator).
    Execute,
    /// One shard of a multi-chip solve.
    ShardExecute,
    /// One rung of the mixed-precision refinement ladder.
    RefinementPass,
    /// Autotune format analysis (probe solves + scoring).
    AutotuneAnalysis,
    /// Host-side fp64 residual work (true-residual checks, refinement residuals).
    HostFp64,
    /// A simulated chip-phase cycle event (program / compute / stream-write / ...).
    ChipPhase,
    /// Instant event: cluster admission control accepted the job (detail carries
    /// tenant and in-system occupancy).
    Admit,
    /// Instant event: the cluster router placed the job on a node (detail carries
    /// the node index and the placement key that won).
    Route,
    /// Instant event: admission control rejected the job with a typed error
    /// instead of queueing it (detail says overloaded / quota).
    Shed,
    /// Instant event: the ABFT checksum flagged a corrupted SpMV result
    /// (detail carries the residual and the chip id).
    FaultDetect,
    /// Re-encoding of a job's matrix onto spare resources after a detected
    /// fault (detail says which retry attempt this is).
    ReEncode,
    /// Instant event: a job was re-routed away from a killed or degraded chip
    /// (detail carries the source worker id).
    Reroute,
}

impl SpanKind {
    /// All kinds, in serialization-label order.
    pub const ALL: [SpanKind; 16] = [
        SpanKind::QueueWait,
        SpanKind::Dequeue,
        SpanKind::CacheLookup,
        SpanKind::Encode,
        SpanKind::Execute,
        SpanKind::ShardExecute,
        SpanKind::RefinementPass,
        SpanKind::AutotuneAnalysis,
        SpanKind::HostFp64,
        SpanKind::ChipPhase,
        SpanKind::Admit,
        SpanKind::Route,
        SpanKind::Shed,
        SpanKind::FaultDetect,
        SpanKind::ReEncode,
        SpanKind::Reroute,
    ];

    /// The stable string label used in JSONL exports.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Dequeue => "dequeue",
            SpanKind::CacheLookup => "cache_lookup",
            SpanKind::Encode => "encode",
            SpanKind::Execute => "execute",
            SpanKind::ShardExecute => "shard_execute",
            SpanKind::RefinementPass => "refinement_pass",
            SpanKind::AutotuneAnalysis => "autotune_analysis",
            SpanKind::HostFp64 => "host_fp64",
            SpanKind::ChipPhase => "chip_phase",
            SpanKind::Admit => "admit",
            SpanKind::Route => "route",
            SpanKind::Shed => "shed",
            SpanKind::FaultDetect => "fault_detect",
            SpanKind::ReEncode => "re_encode",
            SpanKind::Reroute => "reroute",
        }
    }

    /// Parses a label produced by [`SpanKind::label`].
    pub fn from_label(label: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

// The serde_derive shim only handles plain named-field structs, so the enum carries
// hand-written impls (serialized as its stable string label).
impl Serialize for SpanKind {
    fn to_value(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

impl Deserialize for SpanKind {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Str(s) => SpanKind::from_label(s)
                .ok_or_else(|| serde::Error::new(format!("unknown span kind '{s}'"))),
            other => Err(serde::Error::new(format!(
                "expected span-kind string, found {}",
                other.kind()
            ))),
        }
    }
}

/// One traced span or instant event.
///
/// `start_s`/`end_s` are **wall-clock** seconds from the sink's [`Clock`] (see the
/// [`crate::clock`] contract); instant events have `start_s == end_s`.  `seq` numbers
/// events within one job in emission order, so sorting by `(job_id, seq)` reconstructs
/// each job's timeline regardless of worker interleaving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The job this event belongs to.
    pub job_id: u64,
    /// Emission order within the job (0-based).
    pub seq: u32,
    /// The worker that emitted the event, if any.
    pub worker: Option<u64>,
    /// What the event describes.
    pub kind: SpanKind,
    /// Span start, wall-clock seconds since the clock epoch.
    pub start_s: f64,
    /// Span end, wall-clock seconds since the clock epoch.
    pub end_s: f64,
    /// Free-form `key=value` details (deterministic content only).
    pub detail: String,
}

impl TraceEvent {
    /// Span duration in seconds (0 for instant events).
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

/// A shared collector of [`TraceEvent`]s.
///
/// Cloned (via `Arc`) into the runtime config; workers flush per-job batches with
/// [`record_batch`](TraceSink::record_batch).
#[derive(Debug)]
pub struct TraceSink {
    clock: Arc<dyn Clock>,
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceSink {
    /// Creates a sink reading timestamps from the given clock.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        TraceSink {
            clock,
            events: Mutex::new(Vec::new()),
        }
    }

    /// Creates a sink on a fresh [`WallClock`] (the production default).
    pub fn wall() -> Self {
        Self::new(Arc::new(WallClock::new()))
    }

    /// The clock this sink stamps events with.  The runtime reads *all* of its
    /// wall-clock telemetry (queue wait, encode/solve seconds, latency) through
    /// this clock when tracing is configured, so a [`ManualClock`](crate::ManualClock)
    /// sink pins every host-time field — not just the trace timestamps.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Current reading of the sink's clock, in seconds.
    pub fn now_s(&self) -> f64 {
        self.clock.now_s()
    }

    /// Records a single event.
    pub fn record(&self, event: TraceEvent) {
        sync::lock(&self.events).push(event);
    }

    /// Records a whole job's events with one lock acquisition.
    pub fn record_batch(&self, batch: Vec<TraceEvent>) {
        if batch.is_empty() {
            return;
        }
        sync::lock(&self.events).extend(batch);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        sync::lock(&self.events).len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All events so far, sorted by `(job_id, seq)` — the canonical export order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut events = sync::lock(&self.events).clone();
        events.sort_by_key(|e| (e.job_id, e.seq));
        events
    }

    /// Exports the canonical snapshot as JSON-lines (one compact object per line).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.snapshot() {
            // The shim serializer is infallible for plain named-field structs; a
            // failure here is a serde-shim bug, not a runtime condition.
            // refloat-analysis: allow(panic-in-service-path)
            out.push_str(&serde_json::to_string(&event).expect("trace event renders"));
            out.push('\n');
        }
        out
    }
}

/// Parses a JSON-lines trace export back into events (blank lines are skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, serde_json::Error> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn event(job_id: u64, seq: u32, kind: SpanKind) -> TraceEvent {
        TraceEvent {
            job_id,
            seq,
            worker: Some(1),
            kind,
            start_s: 0.5,
            end_s: 1.25,
            detail: format!("kind={}", kind.label()),
        }
    }

    #[test]
    fn kinds_round_trip_through_labels() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(SpanKind::from_label("nope"), None);
    }

    #[test]
    fn snapshot_sorts_by_job_then_seq() {
        let sink = TraceSink::new(Arc::new(ManualClock::new()));
        sink.record(event(2, 0, SpanKind::Execute));
        sink.record_batch(vec![
            event(1, 1, SpanKind::Execute),
            event(1, 0, SpanKind::QueueWait),
        ]);
        let order: Vec<(u64, u32)> = sink.snapshot().iter().map(|e| (e.job_id, e.seq)).collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn jsonl_round_trips() {
        let sink = TraceSink::wall();
        sink.record(event(7, 0, SpanKind::CacheLookup));
        sink.record(event(7, 1, SpanKind::ChipPhase));
        let text = sink.export_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).expect("parses");
        assert_eq!(back, sink.snapshot());
    }

    #[test]
    fn instant_events_have_zero_duration() {
        let mut e = event(1, 0, SpanKind::Dequeue);
        e.end_s = e.start_s;
        assert_eq!(e.duration_s(), 0.0);
    }
}
