//! A lock-minimal metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Hot-path updates (`Counter::inc`, `Histogram::observe`, ...) are plain atomic
//! operations on pre-fetched `Arc` handles — the registry's internal mutexes are only
//! taken when a metric is first created or when a [`MetricsSnapshot`] is assembled, so
//! workers never contend with each other or with a polling client.
//!
//! Histograms use *fixed* bucket bounds, which makes cross-worker aggregation a plain
//! element-wise sum: [`HistogramSnapshot::merge`] is associative and commutative, so
//! per-worker histograms can be combined in any order with identical results.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Serialize, Value};

use crate::sync;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is larger than the current reading.
    pub fn set_max(&self, value: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (value > f64::from_bits(bits)).then(|| value.to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram of `f64` observations.
///
/// Bucket `i` counts observations `v <= bounds[i]` (and `> bounds[i-1]`); one extra
/// overflow bucket counts everything above the last bound.  Bounds are fixed at
/// construction, so two histograms with the same bounds merge by summing buckets.
#[derive(Debug)]
pub struct Histogram {
    bounds: Arc<[f64]>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over the given ascending bucket upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.into(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }

    /// Default bounds for latency-style observations in seconds: 1/2/5 steps from
    /// 100 ns to 100 s (values above 100 s land in the overflow bucket).
    pub fn seconds_bounds() -> Vec<f64> {
        let mut bounds = Vec::new();
        for exp in -7..=2_i32 {
            for mantissa in [1.0, 2.0, 5.0] {
                bounds.push(mantissa * 10.0_f64.powi(exp));
            }
        }
        bounds
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        // First bound >= value; boundary values land in the bucket they bound.
        let idx = self.bounds.partition_point(|b| *b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// An immutable histogram state: per-bucket counts plus total count and sum.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds (the overflow bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (last is overflow).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile estimate, reported as the upper bound of the bucket
    /// containing the rank (overflow observations clamp to the last bound).
    /// Returns 0.0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds[i.min(self.bounds.len() - 1)];
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Element-wise sum of two snapshots with identical bounds.
    ///
    /// Associative and commutative, so per-worker histograms combine in any order.
    /// Panics if the bounds differ (histograms from different registries must be
    /// created with the same bucket layout to be aggregatable).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_string(), self.count.to_value()),
            ("sum".to_string(), self.sum.to_value()),
            ("p50".to_string(), self.percentile(50.0).to_value()),
            ("p99".to_string(), self.percentile(99.0).to_value()),
            ("bounds".to_string(), self.bounds.to_value()),
            ("counts".to_string(), self.counts.to_value()),
        ])
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// `counter`/`gauge`/`histogram` are get-or-create and return shared handles; fetch
/// them once per worker and update through the handle so the hot path never touches
/// the registry locks.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter with this name, creating it if needed.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = sync::lock(&self.counters);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns the gauge with this name, creating it if needed.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = sync::lock(&self.gauges);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns the histogram with this name, creating it with the given bounds if
    /// needed (an existing histogram keeps its original bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = sync::lock(&self.histograms);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Returns a seconds-scale histogram ([`Histogram::seconds_bounds`]).
    pub fn histogram_seconds(&self, name: &str) -> Arc<Histogram> {
        self.histogram(name, &Histogram::seconds_bounds())
    }

    /// A consistent, name-sorted snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: sync::lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: sync::lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: sync::lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`], with entries sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// True when no metric has been registered at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let section = |fields: Vec<(String, Value)>| Value::Object(fields);
        Value::Object(vec![
            (
                "counters".to_string(),
                section(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                section(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                section(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_update_through_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("jobs");
        let b = reg.counter("jobs");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("jobs").get(), 3);

        let g = reg.gauge("depth");
        g.set(4.0);
        g.set_max(2.0);
        assert_eq!(g.get(), 4.0);
        g.set_max(9.5);
        assert_eq!(reg.gauge("depth").get(), 9.5);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::new(&[1.0, 2.0]);
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.percentile(50.0), 0.0);
        assert_eq!(snap.percentile(99.0), 0.0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn single_sample_reports_its_bucket_for_every_percentile() {
        let h = Histogram::new(&[0.001, 0.01, 0.1, 1.0]);
        h.observe(0.05);
        let snap = h.snapshot();
        for p in [0.1, 50.0, 99.0, 100.0] {
            assert_eq!(snap.percentile(p), 0.1, "p={p}");
        }
        assert_eq!(snap.mean(), 0.05);
    }

    #[test]
    fn boundary_values_land_in_the_bucket_they_bound() {
        let h = Histogram::new(&[1.0, 2.0, 5.0]);
        h.observe(1.0); // exactly on a bound: bucket 0 (v <= 1.0)
        h.observe(2.0);
        h.observe(5.0);
        h.observe(7.0); // above the last bound: overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 1, 1, 1]);
        // Overflow observations clamp to the last bound in percentile estimates.
        assert_eq!(snap.percentile(100.0), 5.0);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let bounds = [0.5, 1.0, 2.0];
        let mk = |values: &[f64]| {
            let h = Histogram::new(&bounds);
            for v in values {
                h.observe(*v);
            }
            h.snapshot()
        };
        let a = mk(&[0.1, 0.6, 3.0]);
        let b = mk(&[1.5]);
        let c = mk(&[0.4, 0.4, 2.0, 9.0]);
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        let all = a.merge(&b).merge(&c);
        assert_eq!(all.count, 8);
        assert_eq!(all.counts.iter().sum::<u64>(), 8);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let a = Histogram::new(&[1.0]).snapshot();
        let b = Histogram::new(&[2.0]).snapshot();
        let _ = a.merge(&b);
    }

    #[test]
    fn seconds_bounds_are_ascending_and_span_ns_to_minutes() {
        let bounds = Histogram::seconds_bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!(bounds[0] <= 1e-6);
        assert!(*bounds.last().expect("non-empty") >= 100.0);
    }

    #[test]
    fn snapshot_is_name_sorted_and_queryable() {
        let reg = MetricsRegistry::new();
        reg.counter("z_last").inc();
        reg.counter("a_first").add(5);
        reg.gauge("mid").set(1.5);
        reg.histogram_seconds("lat").observe(0.01);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            vec!["a_first", "z_last"]
        );
        assert_eq!(snap.counter("a_first"), Some(5));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("mid"), Some(1.5));
        assert_eq!(snap.histogram("lat").expect("present").count, 1);
        assert!(!snap.is_empty());
        assert!(MetricsRegistry::new().snapshot().is_empty());
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let reg = MetricsRegistry::new();
        reg.counter("jobs").add(3);
        reg.histogram("lat", &[1.0]).observe(0.5);
        let text = serde_json::to_string(&reg.snapshot()).expect("renders");
        assert!(text.contains("\"jobs\":3"));
        assert!(text.contains("\"histograms\""));
        let back: Value = serde_json::from_str(&text).expect("parses");
        assert_eq!(
            back.field("counters").and_then(|c| c.field("jobs")).ok(),
            Some(&Value::Num(3.0))
        );
    }
}
