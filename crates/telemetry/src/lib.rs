//! Observability for the ReFloat solve service.
//!
//! Three independent layers, used together by `refloat-runtime` and the bench harness:
//!
//! * [`trace`] — a lightweight span/event tracing API ([`TraceSink`], [`TraceEvent`],
//!   [`SpanKind`]).  Workers batch the events of one job and flush them with a single
//!   lock acquisition; the sink exports JSON-lines through the `serde_json` shim.
//! * [`metrics`] — a [`MetricsRegistry`] of named [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s.  All hot-path updates are plain atomics (no lock),
//!   histograms from different workers merge associatively, and a [`MetricsSnapshot`]
//!   can be taken from a *live* runtime at any time.
//! * [`mod@bench`] — the `BENCH_<area>.json` perf-trajectory schema ([`BenchReport`],
//!   [`validate`]): a stable, schema-versioned record of throughput/latency numbers so
//!   successive PRs can claim measured speedups against a tracked baseline.
//!
//! # Clock contract
//!
//! See [`clock`] for the deterministic-clock contract: which fields carry *wall-clock*
//! seconds (host-dependent, never part of determinism digests) and which carry
//! *simulated* seconds from the cycle-accurate cost model (bitwise reproducible).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod clock;
pub mod metrics;
pub mod sync;
pub mod trace;

pub use bench::{validate, BenchReport, BENCH_SCHEMA_VERSION};
pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use trace::{parse_jsonl, SpanKind, TraceEvent, TraceSink};
