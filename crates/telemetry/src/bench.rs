//! The `BENCH_<area>.json` perf-trajectory schema.
//!
//! Each bench binary emits one small JSON file recording what was run (`config`) and
//! what was measured (`metrics`, flat name → finite number).  The schema is stable and
//! versioned so the CI validator ([`validate`]) fails the build when a bin drifts, and
//! successive commits of the same file form a tracked performance trajectory that
//! later PRs can diff against.
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "area": "runtime",
//!   "generated_by": "serve_traffic",
//!   "config": { "jobs": 96, "workers": 4 },
//!   "metrics": { "jobs_per_s": 1234.5, "cache_hit_rate": 0.71 }
//! }
//! ```

use std::io;
use std::path::{Path, PathBuf};

use serde::{Serialize, Value};

/// Version of the `BENCH_*.json` schema; bump when a field is renamed or removed.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Builder for one `BENCH_<area>.json` report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    area: String,
    generated_by: String,
    config: Vec<(String, Value)>,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// Starts a report for the given area (`runtime`, `encode`, ...) produced by the
    /// named binary.
    pub fn new(area: impl Into<String>, generated_by: impl Into<String>) -> Self {
        BenchReport {
            area: area.into(),
            generated_by: generated_by.into(),
            config: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Records a numeric configuration entry (jobs, workers, seed, ...).
    pub fn config_num(mut self, key: &str, value: f64) -> Self {
        self.config.push((key.to_string(), Value::Num(value)));
        self
    }

    /// Records a string configuration entry.
    pub fn config_str(mut self, key: &str, value: &str) -> Self {
        self.config
            .push((key.to_string(), Value::Str(value.to_string())));
        self
    }

    /// Records one measured metric.  Non-finite values are rejected here rather than
    /// silently rendering as `null` and failing validation later.
    pub fn metric(mut self, key: &str, value: f64) -> Self {
        assert!(
            value.is_finite(),
            "bench metric '{key}' must be finite, got {value}"
        );
        self.metrics.push((key.to_string(), value));
        self
    }

    /// The canonical file name for this report's area.
    pub fn file_name(&self) -> String {
        file_name(&self.area)
    }

    /// Renders the schema-versioned value tree.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::Num(BENCH_SCHEMA_VERSION as f64),
            ),
            ("area".to_string(), Value::Str(self.area.clone())),
            (
                "generated_by".to_string(),
                Value::Str(self.generated_by.clone()),
            ),
            ("config".to_string(), Value::Object(self.config.clone())),
            (
                "metrics".to_string(),
                Value::Object(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes `BENCH_<area>.json` (pretty-printed) into `dir` and returns the path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        let mut text =
            serde_json::to_string_pretty(&self.to_value()).expect("bench report renders");
        text.push('\n');
        std::fs::write(&path, text)?;
        Ok(path)
    }
}

/// The canonical file name for a bench area: `BENCH_<area>.json`.
pub fn file_name(area: &str) -> String {
    format!("BENCH_{area}.json")
}

/// Validates a parsed `BENCH_*.json` value: schema version, identity fields, and the
/// presence of each `required_metrics` entry as a finite number.  Returns a list of
/// problems (empty = valid) so a checker can report every drift at once.
pub fn validate(value: &Value, required_metrics: &[&str]) -> Vec<String> {
    let mut problems = Vec::new();
    let field = |name: &str| value.field(name).ok().cloned().unwrap_or(Value::Null);

    match field("schema_version") {
        Value::Num(v) if v == BENCH_SCHEMA_VERSION as f64 => {}
        Value::Num(v) => problems.push(format!(
            "schema_version is {v}, expected {BENCH_SCHEMA_VERSION}"
        )),
        other => problems.push(format!("schema_version missing (found {})", other.kind())),
    }
    for key in ["area", "generated_by"] {
        if !matches!(field(key), Value::Str(_)) {
            problems.push(format!("'{key}' missing or not a string"));
        }
    }
    if !matches!(field("config"), Value::Object(_)) {
        problems.push("'config' missing or not an object".to_string());
    }
    match field("metrics") {
        Value::Object(entries) => {
            for required in required_metrics {
                match entries.iter().find(|(k, _)| k == required) {
                    // The serde_json shim renders non-finite numbers as null, so a
                    // Null here means a bin emitted NaN/inf — flag it as drift.
                    Some((_, Value::Num(v))) if v.is_finite() => {}
                    Some((_, other)) => problems.push(format!(
                        "metric '{required}' is {}, expected finite number",
                        other.kind()
                    )),
                    None => problems.push(format!("required metric '{required}' missing")),
                }
            }
        }
        other => problems.push(format!("'metrics' missing (found {})", other.kind())),
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport::new("runtime", "serve_traffic")
            .config_num("jobs", 96.0)
            .config_str("mode", "quick")
            .metric("jobs_per_s", 1234.5)
            .metric("cache_hit_rate", 0.71)
    }

    #[test]
    fn report_renders_and_validates() {
        let value = sample().to_value();
        assert_eq!(
            validate(&value, &["jobs_per_s", "cache_hit_rate"]),
            Vec::<String>::new()
        );
        let text = serde_json::to_string_pretty(&value).expect("renders");
        let back: Value = serde_json::from_str(&text).expect("parses");
        assert_eq!(validate(&back, &["jobs_per_s"]), Vec::<String>::new());
    }

    #[test]
    fn validation_reports_every_drift() {
        let value = Value::Object(vec![
            ("schema_version".to_string(), Value::Num(99.0)),
            ("area".to_string(), Value::Str("x".to_string())),
            (
                "metrics".to_string(),
                Value::Object(vec![("bad".to_string(), Value::Null)]),
            ),
        ]);
        let problems = validate(&value, &["bad", "gone"]);
        assert_eq!(problems.len(), 5, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("schema_version")));
        assert!(problems.iter().any(|p| p.contains("generated_by")));
        assert!(problems.iter().any(|p| p.contains("'bad'")));
        assert!(problems.iter().any(|p| p.contains("'gone'")));
    }

    #[test]
    fn file_names_follow_the_bench_prefix() {
        assert_eq!(sample().file_name(), "BENCH_runtime.json");
        assert_eq!(file_name("spmv"), "BENCH_spmv.json");
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_metrics_are_rejected_at_build_time() {
        let _ = BenchReport::new("x", "y").metric("bad", f64::NAN);
    }

    #[test]
    fn reports_write_to_disk() {
        let dir = std::env::temp_dir().join("refloat_bench_schema_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = sample().write(&dir).expect("writes");
        let text = std::fs::read_to_string(&path).expect("reads");
        let back: Value = serde_json::from_str(&text).expect("parses");
        assert_eq!(validate(&back, &["jobs_per_s"]), Vec::<String>::new());
        std::fs::remove_dir_all(&dir).ok();
    }
}
