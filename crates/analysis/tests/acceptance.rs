//! Acceptance tests for the workspace auditor: fixture positives, suppressed
//! negatives, the real workspace against the committed baseline, and the
//! committed baseline's byte-identical round-trip.

use std::path::{Path, PathBuf};

use refloat_analysis::baseline::Baseline;
use refloat_analysis::diag::{Lint, Severity};
use refloat_analysis::engine::{analyze_workspace, scan_file};

/// The workspace root, from this crate's manifest dir (`crates/analysis`).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// One positive fixture and the matching suppressed-negative per lint: the fixture
/// fires exactly the expected lint, and the same code under a
/// `// refloat-analysis: allow(<lint>)` justification block is clean.
#[test]
fn every_lint_has_a_firing_fixture_and_a_working_suppression() {
    // (lint, file the fixture pretends to live at, fixture body)
    let fixtures: Vec<(Lint, &str, &str)> = vec![
        (
            Lint::WallClockInDeterministicPath,
            "crates/runtime/src/worker.rs",
            "fn f() { let t0 = Instant::now(); }\n",
        ),
        (
            Lint::UnorderedIteration,
            "crates/core/src/x.rs",
            "fn f() { let m: HashMap<u32, u32> = Default::default(); }\n",
        ),
        (
            Lint::NaiveFloatAccumulation,
            "crates/core/src/x.rs",
            "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n",
        ),
        (
            Lint::PanicInServicePath,
            "crates/runtime/src/sched.rs",
            "fn f(r: Result<u32, ()>) -> u32 { r.unwrap() }\n",
        ),
    ];
    for (lint, file, body) in fixtures {
        let positive = scan_file(file, body, false);
        let fired: Vec<Lint> = positive
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.lint)
            .collect();
        assert_eq!(
            fired,
            vec![lint],
            "fixture for {lint} at {file}: {positive:?}"
        );

        let suppressed_src = format!(
            "// refloat-analysis: allow({lint}) — fixture: justified here because\n\
             // this is the suppressed-negative half of the acceptance test.\n{body}"
        );
        let negative = scan_file(file, &suppressed_src, false);
        assert!(
            negative
                .diagnostics
                .iter()
                .all(|d| d.severity != Severity::Error),
            "suppression for {lint} at {file} did not hold: {negative:?}"
        );
    }

    // lock-order: the inversion fires against a declared order, and an allow on
    // the inner acquisition suppresses the edge.
    let inversion = "fn f(&self) {\n    let g = sync::lock(&self.gauges);\n    let h = sync::lock(&self.counters);\n}\n";
    let declared = vec!["counters".to_string(), "gauges".to_string()];
    let scan = scan_file("crates/x/src/y.rs", inversion, false);
    let diags = refloat_analysis::lock_order::check(&scan.lock_edges, &declared);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, Lint::LockOrder);

    let allowed = "fn f(&self) {\n    let g = sync::lock(&self.gauges);\n    // refloat-analysis: allow(lock-order) — fixture justification.\n    let h = sync::lock(&self.counters);\n}\n";
    let scan = scan_file("crates/x/src/y.rs", allowed, false);
    assert!(
        refloat_analysis::lock_order::check(&scan.lock_edges, &declared).is_empty(),
        "allow(lock-order) must drop the covered edge"
    );

    // forbid-unsafe-missing: crate roots only.
    let root_scan = scan_file("crates/x/src/lib.rs", "pub fn f() {}\n", true);
    assert_eq!(
        root_scan
            .diagnostics
            .iter()
            .map(|d| d.lint)
            .collect::<Vec<_>>(),
        vec![Lint::ForbidUnsafeMissing]
    );
}

/// A seeded violation in a service file is reported with its file and line and
/// drifts from the committed (empty) baseline — the failure mode CI gates on.
#[test]
fn seeded_violation_drifts_from_the_committed_baseline() {
    let root = workspace_root();
    let committed = Baseline::parse(
        &std::fs::read_to_string(root.join("analysis-baseline.toml"))
            .expect("baseline is committed"),
    )
    .expect("committed baseline parses");

    let seeded = "fn tick() -> f64 {\n    let t0 = std::time::Instant::now();\n    t0.elapsed().as_secs_f64()\n}\n";
    let scan = scan_file("crates/runtime/src/worker.rs", seeded, false);
    let lines: Vec<(u32, Lint)> = scan.diagnostics.iter().map(|d| (d.line, d.lint)).collect();
    assert_eq!(
        lines,
        vec![
            (2, Lint::WallClockInDeterministicPath),
            (3, Lint::WallClockInDeterministicPath),
        ],
        "{:?}",
        scan.diagnostics
    );
    let drift = committed.drift(&scan.diagnostics);
    assert!(!drift.is_empty(), "a seeded violation must drift");
}

/// The real workspace is clean against the committed baseline — the same check CI
/// runs, enforced from `cargo test` too so local drift fails fast.
#[test]
fn workspace_matches_committed_baseline() {
    let root = workspace_root();
    let analysis = analyze_workspace(&root).expect("workspace analyzes");
    assert!(analysis.files_scanned > 50, "walker found the workspace");
    let committed = Baseline::parse(
        &std::fs::read_to_string(root.join("analysis-baseline.toml"))
            .expect("baseline is committed"),
    )
    .expect("committed baseline parses");
    let drift = committed.drift(&analysis.diagnostics);
    let rendered: Vec<String> = drift.iter().map(|d| d.to_string()).collect();
    assert!(
        drift.is_empty(),
        "workspace drifted from analysis-baseline.toml:\n{}",
        rendered.join("\n")
    );
}

/// The committed baseline file is in canonical form: parse → re-emit reproduces
/// the exact committed bytes (so `--write-baseline` never produces noisy diffs).
#[test]
fn committed_baseline_is_canonical_bytes() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("analysis-baseline.toml"))
        .expect("baseline is committed");
    let parsed = Baseline::parse(&text).expect("committed baseline parses");
    assert_eq!(
        parsed.emit(),
        text,
        "analysis-baseline.toml is not canonical; regenerate with --write-baseline"
    );
}

/// `lock_order.toml` is committed, parses, and declares the one real multi-lock
/// site (metrics snapshot: counters before gauges before histograms).
#[test]
fn declared_lock_order_is_committed_and_covers_the_metrics_snapshot() {
    let root = workspace_root();
    let order = refloat_analysis::engine::load_lock_order(&root).expect("lock_order.toml parses");
    let pos = |name: &str| {
        order
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("{name} missing from lock_order.toml"))
    };
    assert!(pos("counters") < pos("gauges"));
    assert!(pos("gauges") < pos("histograms"));
}
