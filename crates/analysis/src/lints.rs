//! Token-pattern lints over a [`Lexed`] file.
//!
//! Each lint here encodes a bug class this workspace has actually shipped (see the
//! crate docs for the incident list).  The scans are pure token patterns — the
//! engine ([`crate::engine`]) decides which files a lint applies to, strips
//! `#[cfg(test)]` ranges, and honours `// refloat-analysis: allow(<lint>)`
//! suppressions, so every function in this module reports *every* syntactic match.

use crate::diag::{Diagnostic, Lint, Severity};
use crate::lexer::{Lexed, TokKind, Token};

fn finding(
    file: &str,
    line: u32,
    span: &str,
    lint: Lint,
    severity: Severity,
    message: &str,
    suggestion: &str,
) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        span: span.to_string(),
        lint,
        severity,
        message: message.to_string(),
        suggestion: suggestion.to_string(),
    }
}

/// `t[i] t[i+1]` is the path separator `::`.
fn path_sep(t: &[Token], i: usize) -> bool {
    t.get(i).is_some_and(|a| a.is_punct(':')) && t.get(i + 1).is_some_and(|a| a.is_punct(':'))
}

/// Wall-clock reads outside the injected `Clock`: `Instant::now(...)`,
/// `SystemTime::<member>` and `.elapsed()`.
///
/// A bare `use std::time::Instant;` import does not fire — only a *read* does —
/// so a module may keep the import for an allowed site without double-allowing.
pub fn wall_clock(file: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let t = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..t.len() {
        if t[i].is_ident("Instant")
            && path_sep(t, i + 1)
            && t.get(i + 3).is_some_and(|a| a.is_ident("now"))
        {
            out.push(finding(
                file,
                t[i].line,
                "Instant::now",
                Lint::WallClockInDeterministicPath,
                Severity::Error,
                "wall-clock read (`Instant::now`) in a deterministic path",
                "thread the runtime `Clock` (`clock.now_s()`); only `telemetry::clock` may read host time",
            ));
        } else if t[i].is_ident("SystemTime")
            && path_sep(t, i + 1)
            && t.get(i + 3).is_some_and(|a| a.kind == TokKind::Ident)
        {
            out.push(finding(
                file,
                t[i].line,
                "SystemTime::",
                Lint::WallClockInDeterministicPath,
                Severity::Error,
                "wall-clock read (`SystemTime`) in a deterministic path",
                "thread the runtime `Clock` (`clock.now_s()`); only `telemetry::clock` may read host time",
            ));
        } else if t[i].is_punct('.')
            && t.get(i + 1).is_some_and(|a| a.is_ident("elapsed"))
            && t.get(i + 2).is_some_and(|a| a.is_punct('('))
        {
            out.push(finding(
                file,
                t[i + 1].line,
                ".elapsed()",
                Lint::WallClockInDeterministicPath,
                Severity::Error,
                "`.elapsed()` reads the host monotonic clock",
                "difference two `clock.now_s()` reads instead",
            ));
        }
    }
    out
}

/// `HashMap` / `HashSet` in non-test code: per-process randomized iteration order
/// silently breaks digests, reports and LRU victim scans.
pub fn unordered_iteration(file: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let t = &lexed.tokens;
    let mut out = Vec::new();
    for tok in t {
        let (name, replacement) = if tok.is_ident("HashMap") {
            ("HashMap", "BTreeMap")
        } else if tok.is_ident("HashSet") {
            ("HashSet", "BTreeSet")
        } else {
            continue;
        };
        out.push(finding(
            file,
            tok.line,
            name,
            Lint::UnorderedIteration,
            Severity::Error,
            &format!("`{name}` iteration order is randomized per process"),
            &format!("use `{replacement}` so every walk of the container is deterministic"),
        ));
    }
    out
}

/// Naive left-to-right float accumulation: `.sum::<f64>()` / `.sum::<f32>()`, or a
/// `.fold(0.0, …+…)` reduction.  `vecops::sum` (pairwise, `O(log n · ε)`) is the
/// sanctioned alternative; integer `.sum::<u64>()` folds are exact and do not fire.
pub fn float_accumulation(file: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let t = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..t.len() {
        if t[i].is_punct('.')
            && t.get(i + 1).is_some_and(|a| a.is_ident("sum"))
            && path_sep(t, i + 2)
            && t.get(i + 4).is_some_and(|a| a.is_punct('<'))
            && t.get(i + 5)
                .is_some_and(|a| a.is_ident("f64") || a.is_ident("f32"))
        {
            out.push(finding(
                file,
                t[i + 1].line,
                ".sum::<float>()",
                Lint::NaiveFloatAccumulation,
                Severity::Error,
                "naive left-to-right float `.sum()` accumulates O(n·eps) error",
                "use `refloat_sparse::vecops::sum` (pairwise, O(log n * eps), reproducible split points)",
            ));
        } else if t[i].is_punct('.')
            && t.get(i + 1).is_some_and(|a| a.is_ident("fold"))
            && t.get(i + 2).is_some_and(|a| a.is_punct('('))
            && t.get(i + 3)
                .is_some_and(|a| a.kind == TokKind::Num && is_float_zero(&a.text))
            && fold_args_contain_plus(t, i + 2)
        {
            out.push(finding(
                file,
                t[i + 1].line,
                ".fold(0.0, +)",
                Lint::NaiveFloatAccumulation,
                Severity::Error,
                "`.fold(0.0, +)` is a naive left-to-right float accumulation",
                "use `refloat_sparse::vecops::sum` (pairwise, O(log n * eps), reproducible split points)",
            ));
        }
    }
    out
}

/// Whether a numeric literal is a *float* zero (`0.0`, `0.`, `0f64`, `0.0_f32`,
/// `0e0`).  Integer zeros (`0`, `0u64`) are exact accumulators and do not count.
fn is_float_zero(text: &str) -> bool {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let floaty = cleaned.contains('.')
        || cleaned.contains('e')
        || cleaned.contains('E')
        || cleaned.ends_with("f64")
        || cleaned.ends_with("f32");
    if !floaty {
        return false;
    }
    let numeric: String = cleaned
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .to_string();
    numeric.parse::<f64>().map(|v| v == 0.0).unwrap_or(false)
}

/// Whether the parenthesized argument list opening at `t[open]` (`(`) contains a
/// top-level-or-deeper `+` punct — the accumulate step of a fold.
fn fold_args_contain_plus(t: &[Token], open: usize) -> bool {
    let mut depth = 0i32;
    for tok in &t[open..] {
        if tok.kind == TokKind::Punct {
            match tok.text.as_bytes().first() {
                Some(b'(') => depth += 1,
                Some(b')') => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                Some(b'+') => return true,
                _ => {}
            }
        }
    }
    false
}

/// Keywords that can legitimately precede `[` without the bracket being an index
/// expression (`&mut [f64]`, `dyn [..]`, `return [..]`, …).
const NON_INDEX_PRECEDERS: &[&str] = &[
    "mut", "dyn", "ref", "return", "break", "in", "as", "else", "match", "if", "while", "loop",
    "move", "static", "const", "let", "where", "impl", "for", "fn", "unsafe",
];

/// Panics in the service path: `.unwrap()` / `.expect()` / `panic!` /
/// `unreachable!` / `todo!` / `unimplemented!` (Error), and slice indexing (Warn —
/// report-only, never gated).  `assert!`/`debug_assert!` are *not* flagged:
/// asserting an invariant is policy, unwrapping a `Result` on the hot path is not.
pub fn panic_in_service_path(file: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let t = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..t.len() {
        if t[i].is_punct('.')
            && t.get(i + 1)
                .is_some_and(|a| a.is_ident("unwrap") || a.is_ident("expect"))
            && t.get(i + 2).is_some_and(|a| a.is_punct('('))
        {
            let what = &t[i + 1].text;
            out.push(finding(
                file,
                t[i + 1].line,
                &format!(".{what}()"),
                Lint::PanicInServicePath,
                Severity::Error,
                &format!(
                    "`.{what}()` in a service module turns a recoverable error into a worker panic"
                ),
                "propagate the error, or handle poison via `refloat_telemetry::sync::lock`",
            ));
        } else if t[i].kind == TokKind::Ident
            && matches!(
                t[i].text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && t.get(i + 1).is_some_and(|a| a.is_punct('!'))
        {
            out.push(finding(
                file,
                t[i].line,
                &format!("{}!", t[i].text),
                Lint::PanicInServicePath,
                Severity::Error,
                &format!("`{}!` in a service module takes the worker down", t[i].text),
                "return a typed error (`TicketOutcome::Failed`) instead",
            ));
        } else if t[i].is_punct('[')
            && i > 0
            && (t[i - 1].is_punct(')')
                || t[i - 1].is_punct(']')
                || (t[i - 1].kind == TokKind::Ident
                    && !NON_INDEX_PRECEDERS.contains(&t[i - 1].text.as_str())))
        {
            out.push(finding(
                file,
                t[i].line,
                "[..]",
                Lint::PanicInServicePath,
                Severity::Warn,
                "slice indexing may panic on an out-of-bounds index",
                "prefer `.get(..)` where the index is not invariant-checked",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ids(diags: &[Diagnostic]) -> Vec<(Lint, u32)> {
        diags.iter().map(|d| (d.lint, d.line)).collect()
    }

    #[test]
    fn wall_clock_flags_reads_not_imports() {
        let src = "use std::time::Instant;\nlet t0 = Instant::now();\nlet dt = t0.elapsed();\nlet st = SystemTime::now();\n";
        let diags = wall_clock("f.rs", &lex(src));
        assert_eq!(
            ids(&diags),
            vec![
                (Lint::WallClockInDeterministicPath, 2),
                (Lint::WallClockInDeterministicPath, 3),
                (Lint::WallClockInDeterministicPath, 4),
            ]
        );
    }

    #[test]
    fn unordered_flags_both_containers() {
        let src = "use std::collections::HashMap;\nlet s: HashSet<u32> = HashSet::new();\n";
        let diags = unordered_iteration("f.rs", &lex(src));
        assert_eq!(diags.len(), 3);
        assert!(diags[0].suggestion.contains("BTreeMap"));
        assert!(diags[1].suggestion.contains("BTreeSet"));
    }

    #[test]
    fn float_accumulation_flags_float_sum_and_fold_only() {
        let flagged = "let a: f64 = xs.iter().sum::<f64>();\nlet b = xs.iter().fold(0.0, |acc, x| acc + x);\n";
        assert_eq!(float_accumulation("f.rs", &lex(flagged)).len(), 2);
        // Integer sums and non-additive folds are exact / not accumulations.
        let clean = "let n: u64 = xs.iter().sum::<u64>();\nlet c = xs.iter().fold(0, |acc, x| acc + x);\nlet d = xs.iter().fold(0.0, |acc, x| acc.max(x));\n";
        assert!(float_accumulation("f.rs", &lex(clean)).is_empty());
    }

    #[test]
    fn panic_path_severities() {
        let src = "let x = r.unwrap();\nlet y = r.expect(\"m\");\npanic!(\"boom\");\nlet z = v[i];\nassert!(ok);\nlet w = r.unwrap_or(0);\n";
        let diags = panic_in_service_path("f.rs", &lex(src));
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        let warns: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .collect();
        assert_eq!(errors.len(), 3, "unwrap + expect + panic!: {diags:?}");
        assert_eq!(warns.len(), 1, "v[i] indexing: {diags:?}");
    }

    #[test]
    fn slice_types_are_not_indexing() {
        let src = "fn f(x: &mut [f64], y: &[u8]) -> [f64; 4] { todo!() }\n";
        let diags = panic_in_service_path("f.rs", &lex(src));
        assert!(
            diags
                .iter()
                .all(|d| d.severity == Severity::Error && d.span == "todo!"),
            "{diags:?}"
        );
    }
}
