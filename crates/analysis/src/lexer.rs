//! A token-level Rust lexer: just enough structure for pattern lints.
//!
//! The lexer classifies source text into identifiers, punctuation, literals and
//! lifetimes, with 1-based line numbers, while *consuming* (but recording) comments
//! so that lint patterns can never fire inside a comment, a doc example, or a string
//! literal.  It is not a parser: it has no opinion on expressions or items.  That is
//! deliberate — every lint in this crate is a token-pattern with light scope
//! tracking, which keeps the whole pass dependency-free (no `syn`, no `rustc`
//! internals) and fast enough to run on every file of the workspace in CI.
//!
//! Handled Rust lexical subtleties:
//!
//! * nested block comments (`/* /* */ */`),
//! * string, raw-string (`r#"…"#`), byte-string and char literals (lint patterns
//!   never match inside them),
//! * char-literal vs. lifetime disambiguation (`'a'` vs `'a`),
//! * numeric literals including floats, exponents and suffixes (`0.0_f64`, `1e-3`),
//!   without swallowing the `..` of a range (`0..4`).

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `self`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `(`, `{`, `+`, …).
    Punct,
    /// A string, raw-string, byte-string or char literal (content not preserved).
    Literal,
    /// A numeric literal, with its text preserved (float-accumulation lint needs it).
    Num,
    /// A lifetime (`'a`); distinguished from char literals.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// The token text for idents, puncts and numbers; empty for (non-numeric)
    /// literals, whose content must never influence a lint.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// One comment, as recorded during lexing (suppressions live in comments).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment *starts* on.
    pub line: u32,
    /// The comment text, without the `//` / `/*` markers.
    pub text: String,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments.  Unterminated literals or comments simply
/// end the token stream at end-of-file — a lint pass must degrade gracefully on code
/// that does not compile, never panic.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..end].to_string(),
                });
            }
            b'"' => {
                let tok_line = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: tok_line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_literal(b, i) => {
                let tok_line = line;
                i = skip_raw_or_byte_literal(b, i, &mut line);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: tok_line,
                });
            }
            b'\'' => {
                if is_char_literal(b, i) {
                    i = skip_char_literal(b, i);
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                } else {
                    // A lifetime: consume the quote and the identifier.
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        // Exponent sign: `1e-3` / `2.5E+7`.
                        if (d == b'e' || d == b'E')
                            && i + 1 < b.len()
                            && (b[i + 1] == b'+' || b[i + 1] == b'-')
                            && i + 2 < b.len()
                            && b[i + 2].is_ascii_digit()
                        {
                            i += 2;
                        }
                        i += 1;
                    } else if d == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                        // `0..4` — the dots belong to a range, not the number.
                        break;
                    } else if d == b'.'
                        && (i + 1 >= b.len()
                            || b[i + 1].is_ascii_digit()
                            || !is_ident_start(b[i + 1]))
                    {
                        // `0.0`, `1.` — a fractional part (but `4.max(…)` is a
                        // method call on an integer, not a float).
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Whether position `i` (at `r` or `b`) starts a raw string, byte string or raw byte
/// string literal rather than a plain identifier.
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    match rest {
        [b'r', b'"', ..] | [b'b', b'"', ..] => true,
        [b'r', b'#', ..] => {
            // r#"…"# is a raw string, but r#ident is a raw identifier.
            let mut j = i + 1;
            while j < b.len() && b[j] == b'#' {
                j += 1;
            }
            j < b.len() && b[j] == b'"'
        }
        [b'b', b'r', b'"', ..] | [b'b', b'r', b'#', ..] | [b'b', b'\'', ..] => true,
        _ => false,
    }
}

/// Skips a plain `"…"` string starting at `i`; returns the index past the closing
/// quote and advances `line` over embedded newlines.
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skips `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` and `b'…'` literals starting at `i`.
fn skip_raw_or_byte_literal(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' {
        // b'x' byte literal: like a char literal, no lifetime ambiguity.
        return skip_char_literal(b, j);
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return j; // not actually a literal; resynchronize
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && b[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    j
}

/// Whether the `'` at `i` opens a char literal (vs. a lifetime).
fn is_char_literal(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(b'\\') => true, // '\n', '\'', '\u{…}'
        Some(&c) if c != b'\'' => b.get(i + 2) == Some(&b'\''),
        _ => false,
    }
}

/// Skips a `'…'` char literal starting at the opening quote.
fn skip_char_literal(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let l = lex("fn main() {\n    x.y();\n}\n");
        assert!(l.tokens[0].is_ident("fn"));
        assert!(l.tokens[1].is_ident("main"));
        let x = l.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!(x.line, 2);
    }

    #[test]
    fn patterns_inside_strings_do_not_tokenize() {
        assert!(!idents("let s = \"Instant::now()\";").contains(&"Instant".to_string()));
        assert!(!idents("let s = r#\"HashMap \" quoted\"#;").contains(&"HashMap".to_string()));
        assert!(!idents("let s = b\"unwrap()\";").contains(&"unwrap".to_string()));
    }

    #[test]
    fn comments_are_recorded_not_tokenized() {
        let l = lex("// one unwrap()\n/* two /* nested */ still */ x\n");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("one unwrap()"));
        assert!(l.comments[1].text.contains("nested"));
        assert_eq!(l.tokens.len(), 1);
        assert!(l.tokens[0].is_ident("x"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let l = lex("let c = 'a'; fn f<'a>(x: &'a str) {}");
        let kinds: Vec<TokKind> = l.tokens.iter().map(|t| t.kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == TokKind::Literal).count(), 1);
        assert_eq!(kinds.iter().filter(|k| **k == TokKind::Lifetime).count(), 2);
    }

    #[test]
    fn numbers_keep_floats_but_not_range_dots() {
        let l = lex("0.0_f64 1e-3 0..4 4.max(0)");
        let nums: Vec<String> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0.0_f64", "1e-3", "0", "4", "4", "0"]);
    }

    #[test]
    fn multiline_strings_advance_line_numbers() {
        let l = lex("let s = \"a\nb\nc\";\nx");
        let x = l.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!(x.line, 4);
    }
}
