//! Lock-acquisition-order auditing.
//!
//! The workspace's concurrency is all `Mutex` + `Condvar` (no async runtime), so
//! the deadlock class that matters is *nested acquisition in inconsistent order*.
//! This module recovers an acquisition graph from tokens using a small guard
//! liveness model, then checks it two ways:
//!
//! 1. **Cycles** — any cycle in a file's acquisition graph is a potential
//!    deadlock, declared order or not.
//! 2. **Declared-order inversions** — `lock_order.toml` at the workspace root
//!    declares the global acquisition order (`order = ["counters", …]`); an edge
//!    that acquires an earlier-declared lock while holding a later-declared one is
//!    flagged even if no cycle exists *yet* (the whole point of a declared order is
//!    to fail the first half of a future deadlock).
//!
//! ## Liveness model
//!
//! * An acquisition is `sync::lock(&path.to.field)` (resource = the last
//!   identifier in the argument, e.g. `completed`) or `expr.lock(…)` (resource =
//!   the identifier before `.lock`, e.g. `events`).
//! * A `let`-bound guard lives until `drop(name)` or the end of its block.
//! * A statement temporary (no `let`) lives until the next `;` — which is exactly
//!   Rust's temporary-lifetime rule, and what makes `MetricsRegistry::snapshot`
//!   (three guards inside one struct-literal statement) produce real edges.
//! * `sync::wait(&condvar, guard)` re-acquires the *same* lock, so it is not an
//!   acquisition event; same-resource edges are dropped for the same reason (a
//!   re-`lock` after `drop` is indistinguishable from nesting at token level).
//!
//! Resources are file-scoped for cycle detection (two structs may both have an
//! `inner` field without being the same lock), while declared-order inversions use
//! bare names so `lock_order.toml` stays readable.

use crate::diag::{Diagnostic, Lint, Severity};
use crate::lexer::{Lexed, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// One observed nested acquisition: `to` was locked while `from` was held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Resource already held.
    pub from: String,
    /// Resource acquired while holding `from`.
    pub to: String,
    /// File of the inner acquisition.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

#[derive(Debug)]
struct Guard {
    /// `let` binding name, if any (temporaries have none).
    name: Option<String>,
    /// The lock's resource name.
    resource: String,
    /// Brace depth the guard was created at.
    depth: i32,
}

/// Extracts nested-acquisition edges from one lexed file.
pub fn scan(file: &str, lexed: &Lexed) -> Vec<LockEdge> {
    let t = &lexed.tokens;
    let mut edges = Vec::new();
    let mut live: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut pending_let: Option<String> = None;
    let mut i = 0usize;
    while i < t.len() {
        let tok = &t[i];
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            live.retain(|g| g.depth <= depth);
        } else if tok.is_punct(';') {
            live.retain(|g| g.name.is_some());
            pending_let = None;
        } else if tok.is_ident("let") {
            let mut j = i + 1;
            if t.get(j).is_some_and(|a| a.is_ident("mut")) {
                j += 1;
            }
            pending_let = match (t.get(j), t.get(j + 1)) {
                (Some(name), Some(eq)) if name.kind == TokKind::Ident && eq.is_punct('=') => {
                    Some(name.text.clone())
                }
                _ => None, // destructuring / type-annotated lets: treat as temporary
            };
        } else if tok.is_ident("drop")
            && t.get(i + 1).is_some_and(|a| a.is_punct('('))
            && t.get(i + 2).is_some_and(|a| a.kind == TokKind::Ident)
            && t.get(i + 3).is_some_and(|a| a.is_punct(')'))
        {
            let dropped = &t[i + 2].text;
            live.retain(|g| g.name.as_deref() != Some(dropped.as_str()));
        } else if let Some((resource, line, next)) = acquisition_at(t, i) {
            for g in &live {
                if g.resource != resource {
                    edges.push(LockEdge {
                        from: g.resource.clone(),
                        to: resource.clone(),
                        file: file.to_string(),
                        line,
                    });
                }
            }
            live.push(Guard {
                name: pending_let.take(),
                resource,
                depth,
            });
            i = next;
            continue;
        }
        i += 1;
    }
    edges
}

/// If an acquisition starts at `t[i]`, returns `(resource, line, index past the
/// pattern head)`.
fn acquisition_at(t: &[Token], i: usize) -> Option<(String, u32, usize)> {
    // sync::lock(&path.to.resource)
    if t[i].is_ident("sync")
        && t.get(i + 1).is_some_and(|a| a.is_punct(':'))
        && t.get(i + 2).is_some_and(|a| a.is_punct(':'))
        && t.get(i + 3).is_some_and(|a| a.is_ident("lock"))
        && t.get(i + 4).is_some_and(|a| a.is_punct('('))
    {
        let mut depth = 0i32;
        let mut last_ident = None;
        let mut j = i + 4;
        while j < t.len() {
            let a = &t[j];
            if a.is_punct('(') {
                depth += 1;
            } else if a.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if a.kind == TokKind::Ident {
                last_ident = Some(a.text.clone());
            }
            j += 1;
        }
        let resource = last_ident?;
        return Some((resource, t[i].line, i + 5));
    }
    // expr.lock(…) — resource is the identifier before `.lock`
    if t[i].is_punct('.')
        && t.get(i + 1).is_some_and(|a| a.is_ident("lock"))
        && t.get(i + 2).is_some_and(|a| a.is_punct('('))
        && i > 0
        && t[i - 1].kind == TokKind::Ident
    {
        return Some((t[i - 1].text.clone(), t[i + 1].line, i + 3));
    }
    None
}

/// Checks aggregated edges for cycles (per file) and declared-order inversions.
pub fn check(edges: &[LockEdge], declared_order: &[String]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Declared-order inversions, by bare resource name.
    let position: BTreeMap<&str, usize> = declared_order
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    for e in edges {
        if let (Some(&pf), Some(&pt)) = (position.get(e.from.as_str()), position.get(e.to.as_str()))
        {
            if pf > pt {
                out.push(Diagnostic {
                    file: e.file.clone(),
                    line: e.line,
                    span: format!("{} -> {}", e.from, e.to),
                    lint: Lint::LockOrder,
                    severity: Severity::Error,
                    message: format!(
                        "lock `{}` acquired while holding `{}`, inverting the declared order in lock_order.toml",
                        e.to, e.from
                    ),
                    suggestion: format!("acquire `{}` before `{}` (or drop the held guard first)", e.to, e.from),
                });
            }
        }
    }

    // Cycles, per file (resources are only meaningful within a file).
    let mut by_file: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        by_file.entry(e.file.as_str()).or_default().push(e);
    }
    for (file, file_edges) in by_file {
        let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
        for e in &file_edges {
            adj.entry(e.from.as_str()).or_default().push(e);
        }
        let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
        let nodes: Vec<&str> = adj.keys().copied().collect();
        for start in nodes {
            let mut path: Vec<&str> = Vec::new();
            dfs_cycles(start, &adj, &mut path, &mut reported, file, &mut out);
        }
    }
    out
}

/// Depth-first cycle search.  On finding a node already in `path`, reports the
/// cycle once (deduplicated by its node set) at the closing edge's line.
fn dfs_cycles<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a LockEdge>>,
    path: &mut Vec<&'a str>,
    reported: &mut BTreeSet<BTreeSet<String>>,
    file: &str,
    out: &mut Vec<Diagnostic>,
) {
    if path.len() > 64 {
        return; // defensive bound; real acquisition chains are depth 2-3
    }
    if let Some(pos) = path.iter().position(|n| *n == node) {
        let cycle: Vec<&str> = path[pos..].to_vec();
        let key: BTreeSet<String> = cycle.iter().map(|s| s.to_string()).collect();
        if reported.insert(key) {
            let closing = adj
                .get(path.last().copied().unwrap_or(node))
                .and_then(|es| es.iter().find(|e| e.to == node));
            let line = closing.map(|e| e.line).unwrap_or(1);
            let mut shown: Vec<&str> = cycle.clone();
            shown.push(node);
            out.push(Diagnostic {
                file: file.to_string(),
                line,
                span: shown.join(" -> "),
                lint: Lint::LockOrder,
                severity: Severity::Error,
                message: format!("lock acquisition cycle: {}", shown.join(" -> ")),
                suggestion:
                    "pick one global order for these locks and declare it in lock_order.toml"
                        .to_string(),
            });
        }
        return;
    }
    path.push(node);
    if let Some(next) = adj.get(node) {
        for e in next {
            dfs_cycles(e.to.as_str(), adj, path, reported, file, out);
        }
    }
    path.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn edges(src: &str) -> Vec<(String, String, u32)> {
        scan("f.rs", &lex(src))
            .into_iter()
            .map(|e| (e.from, e.to, e.line))
            .collect()
    }

    #[test]
    fn nested_named_guards_make_an_edge() {
        let src = "fn f(&self) {\n    let a = sync::lock(&self.first);\n    let b = sync::lock(&self.second);\n}\n";
        assert_eq!(edges(src), vec![("first".into(), "second".into(), 3)]);
    }

    #[test]
    fn drop_ends_a_guard_before_the_next_acquisition() {
        let src = "fn f(&self) {\n    let a = sync::lock(&self.first);\n    drop(a);\n    let b = sync::lock(&self.second);\n}\n";
        assert!(edges(src).is_empty());
    }

    #[test]
    fn sequential_statement_temporaries_do_not_nest() {
        let src = "fn f(&self) {\n    sync::lock(&self.first).push(1);\n    sync::lock(&self.second).push(2);\n}\n";
        assert!(edges(src).is_empty());
    }

    #[test]
    fn struct_literal_temporaries_nest_within_one_statement() {
        // The MetricsRegistry::snapshot shape: three guards live until the `;`.
        let src = "fn snap(&self) -> S {\n    S {\n        a: sync::lock(&self.counters).clone(),\n        b: sync::lock(&self.gauges).clone(),\n        c: sync::lock(&self.histograms).clone(),\n    }\n}\n";
        let got = edges(src);
        assert_eq!(
            got,
            vec![
                ("counters".into(), "gauges".into(), 4),
                ("counters".into(), "histograms".into(), 5),
                ("gauges".into(), "histograms".into(), 5),
            ]
        );
    }

    #[test]
    fn method_lock_form_and_block_scope() {
        let src = "fn f(&self) {\n    {\n        let g = self.events.lock().unwrap();\n    }\n    let h = self.other.lock().unwrap();\n}\n";
        assert!(edges(src).is_empty(), "guard g died at its block end");
        let nested =
            "fn f(&self) {\n    let g = self.events.lock().unwrap();\n    let h = self.other.lock().unwrap();\n}\n";
        assert_eq!(edges(nested), vec![("events".into(), "other".into(), 3)]);
    }

    #[test]
    fn three_lock_cycle_is_detected() {
        // fn1: a then b;  fn2: b then c;  fn3: c then a  =>  a -> b -> c -> a.
        let src = "fn f1(&self) {\n    let g = sync::lock(&self.a);\n    let h = sync::lock(&self.b);\n}\nfn f2(&self) {\n    let g = sync::lock(&self.b);\n    let h = sync::lock(&self.c);\n}\nfn f3(&self) {\n    let g = sync::lock(&self.c);\n    let h = sync::lock(&self.a);\n}\n";
        let found = scan("f.rs", &lex(src));
        assert_eq!(found.len(), 3);
        let diags = check(&found, &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, Lint::LockOrder);
        assert!(diags[0].message.contains("cycle"), "{}", diags[0].message);
    }

    #[test]
    fn declared_order_inversion_without_a_cycle() {
        let found = scan(
            "f.rs",
            &lex("fn f(&self) {\n    let g = sync::lock(&self.gauges);\n    let h = sync::lock(&self.counters);\n}\n"),
        );
        let declared = vec!["counters".to_string(), "gauges".to_string()];
        let diags = check(&found, &declared);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("inverting"),
            "{}",
            diags[0].message
        );
        // The same edges in declared order are clean.
        let ok = scan(
            "f.rs",
            &lex("fn f(&self) {\n    let g = sync::lock(&self.counters);\n    let h = sync::lock(&self.gauges);\n}\n"),
        );
        assert!(check(&ok, &declared).is_empty());
    }
}
