//! The committed findings baseline: grandfathered `(lint, file) → count` entries.
//!
//! The baseline is the bridge between "the auditor exists" and "the tree is clean":
//! pre-existing findings are recorded here so the CI gate can fail on *new* findings
//! immediately, while the recorded debt is paid down over subsequent PRs.  The gate
//! fails on drift in **either** direction — a fixed finding whose entry is not
//! removed is as much an error as a new finding — so the file can only shrink
//! truthfully.  Per-site `// refloat-analysis: allow(<lint>)` comments are the other
//! mechanism: those are *permanent, justified* exceptions reviewed in context, while
//! baseline entries are temporary debt.

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Lint, Severity};
use crate::toml;

/// The key of one baseline entry.
pub type BaselineKey = (Lint, String);

/// The committed baseline: `(lint, file) → expected finding count`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Expected error-severity finding counts.
    pub counts: BTreeMap<BaselineKey, u64>,
}

/// One difference between the committed baseline and the current findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Drift {
    /// More findings than the baseline records: new debt was added.
    New {
        /// The lint.
        lint: Lint,
        /// The file.
        file: String,
        /// Findings the baseline allows (0 when unlisted).
        expected: u64,
        /// Findings observed.
        actual: u64,
    },
    /// Fewer findings than the baseline records: the entry is stale and must be
    /// removed (regenerate with `--write-baseline`).
    Stale {
        /// The lint.
        lint: Lint,
        /// The file.
        file: String,
        /// Findings the baseline still records.
        expected: u64,
        /// Findings observed.
        actual: u64,
    },
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Drift::New {
                lint,
                file,
                expected,
                actual,
            } => write!(
                f,
                "NEW  [{lint}] {file}: {actual} finding(s), baseline allows {expected} — \
                 fix the code or add a justified `// refloat-analysis: allow({lint})`"
            ),
            Drift::Stale {
                lint,
                file,
                expected,
                actual,
            } => write!(
                f,
                "STALE [{lint}] {file}: baseline records {expected} but only {actual} remain — \
                 regenerate the baseline (analysis_check --write-baseline)"
            ),
        }
    }
}

impl Baseline {
    /// Builds the baseline that exactly matches `diagnostics` (error severity only;
    /// warnings are never baselined — they do not gate).
    pub fn from_diagnostics(diagnostics: &[Diagnostic]) -> Baseline {
        let mut counts: BTreeMap<BaselineKey, u64> = BTreeMap::new();
        for d in diagnostics {
            if d.severity == Severity::Error {
                *counts.entry((d.lint, d.file.clone())).or_insert(0) += 1;
            }
        }
        Baseline { counts }
    }

    /// Compares current `diagnostics` against this baseline.  Empty result ⇔ the
    /// gate passes.
    pub fn drift(&self, diagnostics: &[Diagnostic]) -> Vec<Drift> {
        let actual = Baseline::from_diagnostics(diagnostics);
        let mut out = Vec::new();
        let keys: std::collections::BTreeSet<&BaselineKey> =
            self.counts.keys().chain(actual.counts.keys()).collect();
        for key in keys {
            let expected = self.counts.get(key).copied().unwrap_or(0);
            let observed = actual.counts.get(key).copied().unwrap_or(0);
            let (lint, file) = (key.0, key.1.clone());
            if observed > expected {
                out.push(Drift::New {
                    lint,
                    file,
                    expected,
                    actual: observed,
                });
            } else if observed < expected {
                out.push(Drift::Stale {
                    lint,
                    file,
                    expected,
                    actual: observed,
                });
            }
        }
        out
    }

    /// Renders the canonical baseline file (sorted, fixed header).  `emit ∘ parse`
    /// of an emitter-produced file is byte-identical.
    pub fn emit(&self) -> String {
        let mut out = String::from(
            "# refloat-analysis baseline: grandfathered findings as (lint, file) -> count.\n\
             # Regenerate with: cargo run -p refloat-analysis --bin analysis_check -- --write-baseline\n\
             # Policy: new code never adds findings.  The CI gate fails on drift in either\n\
             # direction, so fixing a finding requires removing its entry here too.\n",
        );
        for ((lint, file), count) in &self.counts {
            out.push_str(&format!(
                "\n[[finding]]\nlint = {}\nfile = {}\ncount = {}\n",
                toml::quote(lint.id()),
                toml::quote(file),
                count
            ));
        }
        out
    }

    /// Parses a baseline file produced by [`emit`](Baseline::emit).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = toml::parse(text).map_err(|e| e.to_string())?;
        let mut counts = BTreeMap::new();
        for (name, table) in &doc.tables {
            if name != "finding" {
                return Err(format!("unexpected table [[{name}]] in baseline"));
            }
            let lint_id = table
                .get_str("lint")
                .ok_or_else(|| "baseline entry missing `lint`".to_string())?;
            let lint = Lint::from_id(lint_id)
                .ok_or_else(|| format!("unknown lint id {lint_id:?} in baseline"))?;
            let file = table
                .get_str("file")
                .ok_or_else(|| "baseline entry missing `file`".to_string())?
                .to_string();
            let count = table
                .get_int("count")
                .ok_or_else(|| "baseline entry missing `count`".to_string())?;
            if counts.insert((lint, file.clone()), count).is_some() {
                return Err(format!("duplicate baseline entry for ({lint_id}, {file})"));
            }
        }
        Ok(Baseline { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(lint: Lint, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            span: String::new(),
            lint,
            severity: Severity::Error,
            message: "m".to_string(),
            suggestion: String::new(),
        }
    }

    #[test]
    fn emit_parse_round_trip_is_byte_identical() {
        let diags = vec![
            diag(Lint::PanicInServicePath, "crates/runtime/src/worker.rs", 3),
            diag(Lint::PanicInServicePath, "crates/runtime/src/worker.rs", 9),
            diag(Lint::UnorderedIteration, "crates/core/src/autotune.rs", 1),
        ];
        let baseline = Baseline::from_diagnostics(&diags);
        let text = baseline.emit();
        let reparsed = Baseline::parse(&text).unwrap();
        assert_eq!(reparsed, baseline);
        assert_eq!(reparsed.emit(), text, "emit ∘ parse must be byte-identical");
    }

    #[test]
    fn empty_baseline_round_trips_too() {
        let baseline = Baseline::default();
        let text = baseline.emit();
        assert_eq!(Baseline::parse(&text).unwrap().emit(), text);
    }

    #[test]
    fn drift_flags_new_and_stale_in_both_directions() {
        let committed = Baseline::from_diagnostics(&[
            diag(Lint::PanicInServicePath, "a.rs", 1),
            diag(Lint::PanicInServicePath, "a.rs", 2),
            diag(Lint::UnorderedIteration, "b.rs", 1),
        ]);
        // One a.rs finding fixed (stale), one brand-new c.rs finding (new).
        let current = vec![
            diag(Lint::PanicInServicePath, "a.rs", 1),
            diag(Lint::UnorderedIteration, "b.rs", 1),
            diag(Lint::WallClockInDeterministicPath, "c.rs", 5),
        ];
        let drift = committed.drift(&current);
        assert_eq!(drift.len(), 2);
        assert!(drift
            .iter()
            .any(|d| matches!(d, Drift::Stale { file, .. } if file == "a.rs")));
        assert!(drift
            .iter()
            .any(|d| matches!(d, Drift::New { file, .. } if file == "c.rs")));
    }

    #[test]
    fn warnings_are_never_baselined() {
        let mut d = diag(Lint::PanicInServicePath, "a.rs", 1);
        d.severity = Severity::Warn;
        assert!(Baseline::from_diagnostics(&[d]).counts.is_empty());
    }
}
