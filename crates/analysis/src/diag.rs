//! Typed diagnostics: lint identities, severities, and the finding record.

use std::fmt;

/// The identity of one lint.  The stable string id (used in suppression comments,
/// baseline entries and reports) is [`Lint::id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// `Instant::now` / `SystemTime` / `.elapsed()` outside `telemetry::clock` —
    /// host time must flow through the injected `Clock` so a `ManualClock` run is
    /// bitwise reproducible.
    WallClockInDeterministicPath,
    /// `HashMap` / `HashSet` in non-test code: iteration order is randomized per
    /// process, which silently breaks digests, reports and LRU victim scans.
    UnorderedIteration,
    /// `.sum::<f64>()` / `fold(0.0, +)` float accumulation outside `vecops`, where
    /// the pairwise/Kahan reductions live.
    NaiveFloatAccumulation,
    /// `unwrap()` / `expect()` / `panic!` / indexing in the runtime service path,
    /// where every panic becomes a degraded (Failed) job.
    PanicInServicePath,
    /// A lock acquisition graph cycle, or a nested acquisition that inverts the
    /// order declared in `lock_order.toml`.
    LockOrder,
    /// A non-vendor crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafeMissing,
}

impl Lint {
    /// Every lint, in id order.
    pub const ALL: [Lint; 6] = [
        Lint::WallClockInDeterministicPath,
        Lint::UnorderedIteration,
        Lint::NaiveFloatAccumulation,
        Lint::PanicInServicePath,
        Lint::LockOrder,
        Lint::ForbidUnsafeMissing,
    ];

    /// The stable string id used in `// refloat-analysis: allow(<id>)` comments,
    /// baseline entries and reports.
    pub fn id(self) -> &'static str {
        match self {
            Lint::WallClockInDeterministicPath => "wall-clock-in-deterministic-path",
            Lint::UnorderedIteration => "unordered-iteration",
            Lint::NaiveFloatAccumulation => "naive-float-accumulation",
            Lint::PanicInServicePath => "panic-in-service-path",
            Lint::LockOrder => "lock-order",
            Lint::ForbidUnsafeMissing => "forbid-unsafe-missing",
        }
    }

    /// Parses a stable string id.
    pub fn from_id(id: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.id() == id)
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How a finding gates the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, never gated: candidate for cleanup, too noisy to block on.
    Warn,
    /// Gated through the baseline: a new finding fails `analysis_check`.
    Error,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Repo-relative path (forward slashes) of the file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// The offending source fragment (token span), for the report.
    pub span: String,
    /// Which lint fired.
    pub lint: Lint,
    /// Gating severity.
    pub severity: Severity,
    /// What is wrong.
    pub message: String,
    /// The sanctioned fix.
    pub suggestion: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: [{}] {}{}",
            self.severity.label(),
            self.file,
            self.line,
            self.lint.id(),
            self.message,
            if self.suggestion.is_empty() {
                String::new()
            } else {
                format!(" (suggestion: {})", self.suggestion)
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_ids_round_trip() {
        for lint in Lint::ALL {
            assert_eq!(Lint::from_id(lint.id()), Some(lint));
        }
        assert_eq!(Lint::from_id("nope"), None);
    }

    #[test]
    fn diagnostics_render_file_line_and_lint() {
        let d = Diagnostic {
            file: "crates/runtime/src/worker.rs".to_string(),
            line: 42,
            span: "Instant::now".to_string(),
            lint: Lint::WallClockInDeterministicPath,
            severity: Severity::Error,
            message: "wall-clock read in a deterministic path".to_string(),
            suggestion: "thread the runtime Clock".to_string(),
        };
        let s = d.to_string();
        assert!(s.contains("crates/runtime/src/worker.rs:42"));
        assert!(s.contains("wall-clock-in-deterministic-path"));
        assert!(s.starts_with("error:"));
    }
}
