//! `refloat-analysis`: an in-house determinism & concurrency auditor for this
//! workspace, wired into CI as the `analysis_check` gate.
//!
//! The ReFloat runtime's headline property is *bitwise reproducibility*: the same
//! trace produces the same digest across worker counts, shard counts, scheduler
//! policies and tracing on/off.  That property is one `HashMap` iteration or one
//! stray `Instant::now()` away from silently breaking, and `rustc`/`clippy` have
//! no idea which of our files are on the deterministic path.  This crate does: it
//! lexes the workspace's own sources (a token-level lexer + light scope tracking,
//! no `syn`, no `rustc` internals — the build box is offline) and enforces the
//! project's determinism and concurrency policies as lints.
//!
//! # The lints, and the shipped bugs that motivated them
//!
//! * **`wall-clock-in-deterministic-path`** — `Instant::now` / `SystemTime` /
//!   `.elapsed()` anywhere but `telemetry::clock`.  PR 6 introduced the `Clock`
//!   contract (`ManualClock` + 1 worker ⇒ byte-identical JSONL traces); the five
//!   runtime modules (`decision`, `sched`, `cache`, `client`, `worker`) still read
//!   host time directly until this PR threaded the injected clock through them —
//!   every such read was an irreproducible timestamp in the trace.
//! * **`unordered-iteration`** — `HashMap`/`HashSet` in non-test code.  The LRU
//!   victim scans in the encode/decision caches iterated a `HashMap`, so *which*
//!   entry was evicted on a tie depended on the process's hash seed; this PR moved
//!   them to `BTreeMap`/`BTreeSet` (and the autotune candidate-dedup set too).
//! * **`naive-float-accumulation`** — `.sum::<f64>()` / `.fold(0.0, +)` outside
//!   `vecops`.  PR 3 fixed `dot`/`norm2` to pairwise summation (`O(log n · ε)`)
//!   after naive accumulation produced order-dependent residuals, but stray
//!   `.sum::<f64>()` reductions kept reappearing (report means, Frobenius norms);
//!   `vecops::sum` is now the sanctioned spelling and this lint points at it.
//! * **`panic-in-service-path`** — `unwrap`/`expect`/`panic!` (and, as a
//!   report-only warning, slice indexing) in the runtime/telemetry service
//!   modules.  PR 5 had to bolt `catch_unwind` containment onto workers after a
//!   scheduler `.expect("band 1")` and a poisoned-mutex `.unwrap()` cascade took
//!   the whole pool down; `refloat_telemetry::sync` (poison-recovering `lock`
//!   /`wait`) is the sanctioned fix this lint suggests.
//! * **`lock-order`** — cycles in the recovered lock-acquisition graph, and
//!   inversions of the order declared in `lock_order.toml`.
//!   `MetricsRegistry::snapshot` really does hold three guards at once
//!   (counters → gauges → histograms); the declared order pins that today so a
//!   future writer taking them backwards fails CI *before* the deadlock ships.
//! * **`forbid-unsafe-missing`** — every non-vendor crate root must carry
//!   `#![forbid(unsafe_code)]` (this PR added it everywhere; the lint keeps it).
//!
//! # Workflow
//!
//! `cargo run -p refloat-analysis --bin analysis_check` scans the workspace,
//! prints surviving findings, and diffs error-severity counts against the
//! committed `analysis-baseline.toml`.  Exit codes: `0` clean, `1` drift (new
//! *or* stale findings — the baseline may only shrink truthfully), `2` I/O or
//! config error.  `--write-baseline` regenerates the baseline;  `--report PATH`
//! writes the full findings report (CI uploads it next to the BENCH artifacts).
//! Per-site suppressions are `// refloat-analysis: allow(<lint>) — justification`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod lints;
pub mod lock_order;
pub mod toml;

pub use baseline::{Baseline, Drift};
pub use diag::{Diagnostic, Lint, Severity};
pub use engine::{analyze_workspace, scan_file, Analysis, FileScan};
