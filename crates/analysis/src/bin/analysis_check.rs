//! The CI gate: scan the workspace, diff against `analysis-baseline.toml`.
//!
//! ```text
//! analysis_check [--root PATH] [--write-baseline] [--report PATH]
//! ```
//!
//! Exit codes: `0` clean, `1` baseline drift (new or stale findings), `2` I/O or
//! usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use refloat_analysis::baseline::Baseline;
use refloat_analysis::diag::Severity;
use refloat_analysis::engine;

const BASELINE_FILE: &str = "analysis-baseline.toml";

struct Args {
    root: PathBuf,
    write_baseline: bool,
    report: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        write_baseline: false,
        report: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a path")?);
            }
            "--write-baseline" => args.write_baseline = true,
            "--report" => {
                args.report = Some(PathBuf::from(it.next().ok_or("--report needs a path")?));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: analysis_check [--root PATH] [--write-baseline] [--report PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let analysis = match engine::analyze_workspace(&args.root) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("analysis_check: {msg}");
            return ExitCode::from(2);
        }
    };
    let errors = analysis
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warns = analysis.diagnostics.len() - errors;

    if args.write_baseline {
        let fresh = Baseline::from_diagnostics(&analysis.diagnostics);
        if let Err(e) = std::fs::write(args.root.join(BASELINE_FILE), fresh.emit()) {
            eprintln!("analysis_check: writing {BASELINE_FILE}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "analysis_check: wrote {BASELINE_FILE} ({} grandfathered finding(s) across {} files)",
            errors, analysis.files_scanned
        );
        return ExitCode::SUCCESS;
    }

    let baseline_path = args.root.join(BASELINE_FILE);
    let committed = if baseline_path.is_file() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("analysis_check: reading {BASELINE_FILE}: {e}");
                return ExitCode::from(2);
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("analysis_check: {BASELINE_FILE}: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };
    let drift = committed.drift(&analysis.diagnostics);

    let mut report = String::new();
    report.push_str(&format!(
        "refloat-analysis report: {} file(s) scanned, {} error(s), {} warning(s), {} drift\n",
        analysis.files_scanned,
        errors,
        warns,
        drift.len()
    ));
    for d in &analysis.diagnostics {
        report.push_str(&format!("{d}\n"));
    }
    for d in &drift {
        report.push_str(&format!("{d}\n"));
    }
    print!("{report}");
    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("analysis_check: writing report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if drift.is_empty() {
        println!("analysis_check: OK (clean against {BASELINE_FILE})");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "analysis_check: FAILED — {} finding(s) drifted from {BASELINE_FILE}",
            drift.len()
        );
        ExitCode::FAILURE
    }
}
