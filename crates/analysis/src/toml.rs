//! A minimal TOML subset: exactly what `analysis-baseline.toml` and
//! `lock_order.toml` need, written in-house (the offline container has no `toml`
//! crate, and the full grammar is far more than two config files deserve).
//!
//! Supported: `#` comments, bare or quoted keys, string values, integer values,
//! arrays of strings, and `[[table]]` array-of-tables headers.  The emitter is
//! canonical (sorted, fixed spacing), so *parse → re-emit* of an emitter-produced
//! file is byte-identical — the property the baseline round-trip test pins.

use std::fmt;

/// A parsed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// A (non-negative) integer.
    Int(u64),
    /// An array of quoted strings.
    StrArray(Vec<String>),
}

/// One `[[name]]` table: ordered key/value pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    /// Key/value pairs in file order.
    pub entries: Vec<(String, Value)>,
}

impl Table {
    /// The value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The string value of `key`, if present and a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The integer value of `key`, if present and an integer.
    pub fn get_int(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(Value::Int(n)) => Some(*n),
            _ => None,
        }
    }
}

/// A parsed document: top-level key/values plus `[[name]]` tables in file order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Document {
    /// Key/value pairs before any table header.
    pub root: Table,
    /// `[[name]]` tables, in file order.
    pub tables: Vec<(String, Table)>,
}

/// A parse failure, with the 1-based line it happened on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses the supported TOML subset.
pub fn parse(text: &str) -> Result<Document, ParseError> {
    let mut doc = Document::default();
    let mut current: Option<(String, Table)> = None;
    let mut lines = text.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let mut joined;
        let mut line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // A multi-line array: accumulate until the closing bracket.
        if line.contains('[') && !line.starts_with("[[") && !line.contains(']') {
            joined = line.to_string();
            for (_, cont) in lines.by_ref() {
                let cont = cont.trim();
                if cont.starts_with('#') {
                    continue;
                }
                joined.push(' ');
                joined.push_str(cont);
                if cont.contains(']') {
                    break;
                }
            }
            if !joined.contains(']') {
                return Err(ParseError {
                    line: lineno,
                    message: "unterminated array".to_string(),
                });
            }
            line = &joined;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            if let Some(done) = current.take() {
                doc.tables.push(done);
            }
            current = Some((name.trim().to_string(), Table::default()));
            continue;
        }
        if line.starts_with('[') {
            return Err(ParseError {
                line: lineno,
                message: "plain [table] headers are not part of the supported subset".to_string(),
            });
        }
        let (key, value_text) = line.split_once('=').ok_or_else(|| ParseError {
            line: lineno,
            message: format!("expected `key = value`, found {line:?}"),
        })?;
        let key = unquote_key(key.trim());
        let value = parse_value(value_text.trim(), lineno)?;
        match &mut current {
            Some((_, table)) => table.entries.push((key, value)),
            None => doc.root.entries.push((key, value)),
        }
    }
    if let Some(done) = current.take() {
        doc.tables.push(done);
    }
    Ok(doc)
}

fn unquote_key(key: &str) -> String {
    key.strip_prefix('"')
        .and_then(|k| k.strip_suffix('"'))
        .unwrap_or(key)
        .to_string()
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ParseError> {
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Value::StrArray(Vec::new()));
        }
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            match parse_value(part, lineno)? {
                Value::Str(s) => items.push(s),
                _ => {
                    return Err(ParseError {
                        line: lineno,
                        message: "arrays may contain only strings".to_string(),
                    })
                }
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(inner) = text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        return Ok(Value::Str(unescape(inner)));
    }
    text.parse::<u64>().map(Value::Int).map_err(|_| ParseError {
        line: lineno,
        message: format!("unsupported value {text:?} (expected string, integer or array)"),
    })
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Quotes a string value canonically.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_root_keys_tables_and_arrays() {
        let doc = parse(
            "# header\norder = [\"a\", \"b\"]\n\n[[finding]]\nlint = \"x\"\ncount = 3\n\n[[finding]]\nlint = \"y\"\ncount = 1\n",
        )
        .unwrap();
        assert_eq!(
            doc.root.get("order"),
            Some(&Value::StrArray(vec!["a".to_string(), "b".to_string()]))
        );
        assert_eq!(doc.tables.len(), 2);
        assert_eq!(doc.tables[0].0, "finding");
        assert_eq!(doc.tables[0].1.get_str("lint"), Some("x"));
        assert_eq!(doc.tables[1].1.get_int("count"), Some(1));
    }

    #[test]
    fn parses_multi_line_arrays() {
        let doc = parse("order = [\n    \"a\",\n    # a comment inside\n    \"b\",\n]\n").unwrap();
        assert_eq!(
            doc.root.get("order"),
            Some(&Value::StrArray(vec!["a".to_string(), "b".to_string()]))
        );
        assert!(
            parse("order = [\n    \"a\",\n").is_err(),
            "unterminated array"
        );
    }

    #[test]
    fn quoting_round_trips() {
        let original = "a \"quoted\" \\ backslash";
        let quoted = quote(original);
        match parse_value(&quoted, 1).unwrap() {
            Value::Str(s) => assert_eq!(s, original),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse("[table]\n").is_err());
        assert!(parse("x = 1.5\n").is_err());
        assert!(parse("just a line\n").is_err());
    }
}
