//! The per-file lint pipeline and workspace walker.
//!
//! Pipeline per file: lex → strip `#[cfg(test)]` ranges → run the lints that apply
//! to this path → honour `// refloat-analysis: allow(<lint>)` suppressions →
//! collect lock-acquisition edges for the global [`crate::lock_order`] check.
//!
//! ## Path scoping
//!
//! * `wall-clock-in-deterministic-path` runs everywhere except
//!   `crates/telemetry/src/clock.rs` — the **one** file allowed to read host time
//!   (`WallClock` wraps it behind the `Clock` trait everything else injects).
//! * `naive-float-accumulation` runs everywhere except
//!   `crates/sparse/src/vecops.rs`, where the pairwise/Kahan reductions live.
//! * `panic-in-service-path` runs only in the runtime/telemetry service modules
//!   ([`SERVICE_PATHS`]): a panic there takes down a worker serving other tenants'
//!   jobs, while a panic in e.g. a bench bin only kills the bench.
//! * `unordered-iteration` and `lock-order` run everywhere.
//!
//! ## Suppressions
//!
//! `// refloat-analysis: allow(lint-a, lint-b) — justification` suppresses those
//! lints from the comment's line through the *next line that has code on it* (so a
//! multi-line justification block above the flagged statement works).  Vendor shims
//! (`crates/vendor/`) and test code (`#[cfg(test)]` items, `tests/` dirs) are out
//! of scope entirely: the lints defend the *shipped* deterministic service path.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Lint, Severity};
use crate::lexer::{lex, Lexed};
use crate::lints;
use crate::lock_order::{self, LockEdge};

/// Files exempt from the wall-clock lint: the `Clock` implementation itself.
pub const WALL_CLOCK_EXEMPT: &[&str] = &["crates/telemetry/src/clock.rs"];

/// Files exempt from the float-accumulation lint: the sanctioned reductions.
pub const FLOAT_ACCUM_EXEMPT: &[&str] = &["crates/sparse/src/vecops.rs"];

/// Service modules where a panic degrades jobs for every tenant — the scope of the
/// `panic-in-service-path` lint.
pub const SERVICE_PATHS: &[&str] = &[
    "crates/runtime/src/worker.rs",
    "crates/runtime/src/client.rs",
    "crates/runtime/src/sequence.rs",
    "crates/runtime/src/node.rs",
    "crates/runtime/src/health.rs",
    "crates/reram-sim/src/fault.rs",
    "crates/runtime/src/cluster/mod.rs",
    "crates/runtime/src/cluster/router.rs",
    "crates/runtime/src/cluster/admission.rs",
    "crates/runtime/src/sched.rs",
    "crates/runtime/src/cache.rs",
    "crates/runtime/src/decision.rs",
    "crates/runtime/src/queue.rs",
    "crates/telemetry/src/trace.rs",
    "crates/telemetry/src/metrics.rs",
];

/// The result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Surviving (non-test, non-suppressed) findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Surviving lock-acquisition edges, for the global graph.
    pub lock_edges: Vec<LockEdge>,
}

/// One parsed `allow(...)` suppression and the line range it covers.
#[derive(Debug)]
struct Allow {
    lints: Vec<Lint>,
    start: u32,
    end: u32,
}

/// Runs the full per-file pipeline on `src`, which lives at repo-relative path
/// `rel` (forward slashes).  `is_crate_root` additionally checks the
/// `forbid-unsafe-missing` lint.
pub fn scan_file(rel: &str, src: &str, is_crate_root: bool) -> FileScan {
    let lexed = lex(src);
    let excluded = cfg_test_ranges(&lexed);
    let allows = parse_allows(&lexed);

    let mut diags = Vec::new();
    if !WALL_CLOCK_EXEMPT.contains(&rel) {
        diags.extend(lints::wall_clock(rel, &lexed));
    }
    diags.extend(lints::unordered_iteration(rel, &lexed));
    if !FLOAT_ACCUM_EXEMPT.contains(&rel) {
        diags.extend(lints::float_accumulation(rel, &lexed));
    }
    if SERVICE_PATHS.contains(&rel) {
        diags.extend(lints::panic_in_service_path(rel, &lexed));
    }
    if is_crate_root && !has_forbid_unsafe(&lexed) {
        diags.push(Diagnostic {
            file: rel.to_string(),
            line: 1,
            span: "#![forbid(unsafe_code)]".to_string(),
            lint: Lint::ForbidUnsafeMissing,
            severity: Severity::Error,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            suggestion: "every non-vendor crate in this workspace forbids unsafe".to_string(),
        });
    }
    let mut edges = lock_order::scan(rel, &lexed);

    let in_tests = |line: u32| excluded.iter().any(|(s, e)| line >= *s && line <= *e);
    diags.retain(|d| !in_tests(d.line) && !suppressed(&allows, d.lint, d.line));
    edges.retain(|e| !in_tests(e.line) && !suppressed(&allows, Lint::LockOrder, e.line));

    FileScan {
        diagnostics: diags,
        lock_edges: edges,
    }
}

fn suppressed(allows: &[Allow], lint: Lint, line: u32) -> bool {
    allows
        .iter()
        .any(|a| a.lints.contains(&lint) && line >= a.start && line <= a.end)
}

/// Parses `// refloat-analysis: allow(a, b)` comments.  A comment covers its own
/// line through the first subsequent line that carries a token, so a multi-line
/// justification block above the flagged statement suppresses that statement.
fn parse_allows(lexed: &Lexed) -> Vec<Allow> {
    let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(after_marker) = c.text.split("refloat-analysis:").nth(1) else {
            continue;
        };
        let Some(args) = after_marker
            .split("allow(")
            .nth(1)
            .and_then(|r| r.split(')').next())
        else {
            continue;
        };
        let lints: Vec<Lint> = args
            .split(',')
            .filter_map(|id| Lint::from_id(id.trim()))
            .collect();
        if lints.is_empty() {
            continue;
        }
        let end = token_lines
            .range(c.line..)
            .next()
            .copied()
            .unwrap_or(c.line);
        out.push(Allow {
            lints,
            start: c.line,
            end,
        });
    }
    out
}

/// Whether the token stream contains `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(lexed: &Lexed) -> bool {
    let t = &lexed.tokens;
    (0..t.len()).any(|i| {
        t[i].is_punct('#')
            && t.get(i + 1).is_some_and(|a| a.is_punct('!'))
            && t.get(i + 2).is_some_and(|a| a.is_punct('['))
            && t.get(i + 3).is_some_and(|a| a.is_ident("forbid"))
            && t.get(i + 4).is_some_and(|a| a.is_punct('('))
            && t.get(i + 5).is_some_and(|a| a.is_ident("unsafe_code"))
            && t.get(i + 6).is_some_and(|a| a.is_punct(')'))
            && t.get(i + 7).is_some_and(|a| a.is_punct(']'))
    })
}

/// Line ranges covered by `#[cfg(test)]` items (attribute line through the closing
/// brace of the annotated item, or its terminating `;`).
fn cfg_test_ranges(lexed: &Lexed) -> Vec<(u32, u32)> {
    let t = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 6 < t.len() {
        let is_cfg_test = t[i].is_punct('#')
            && t[i + 1].is_punct('[')
            && t[i + 2].is_ident("cfg")
            && t[i + 3].is_punct('(')
            && t[i + 4].is_ident("test")
            && t[i + 5].is_punct(')')
            && t[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = t[i].line;
        let mut j = i + 7;
        // Skip any further attributes between the cfg and the item.
        while j + 1 < t.len() && t[j].is_punct('#') && t[j + 1].is_punct('[') {
            let mut bracket = 0i32;
            j += 1;
            while j < t.len() {
                if t[j].is_punct('[') {
                    bracket += 1;
                } else if t[j].is_punct(']') {
                    bracket -= 1;
                    if bracket == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // The item ends at its matching `}` (mod/fn/impl) or at `;` (use/static).
        let mut end_line = start_line;
        while j < t.len() {
            if t[j].is_punct(';') {
                end_line = t[j].line;
                break;
            }
            if t[j].is_punct('{') {
                let mut brace = 0i32;
                while j < t.len() {
                    if t[j].is_punct('{') {
                        brace += 1;
                    } else if t[j].is_punct('}') {
                        brace -= 1;
                        if brace == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                end_line = t.get(j).map(|tok| tok.line).unwrap_or(start_line);
                break;
            }
            j += 1;
        }
        out.push((start_line, end_line));
        i = j.max(i + 7);
    }
    out
}

/// All analyzable source files: `src/**/*.rs` plus `crates/<name>/src/**/*.rs` for
/// every non-vendor crate, as sorted `(repo-relative, absolute)` pairs.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    collect_rs(&root.join("src"), "src", &mut out)?;
    let crates_dir = root.join("crates");
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name != "vendor" && entry.file_type()?.is_dir() {
            names.push(name);
        }
    }
    names.sort();
    for name in names {
        collect_rs(
            &crates_dir.join(&name).join("src"),
            &format!("crates/{name}/src"),
            &mut out,
        )?;
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn collect_rs(dir: &Path, rel: &str, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name().to_string_lossy().into_owned();
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, &format!("{rel}/{name}"), out)?;
        } else if name.ends_with(".rs") {
            out.push((format!("{rel}/{name}"), path));
        }
    }
    Ok(())
}

/// The crate roots the `forbid-unsafe-missing` lint applies to: the umbrella's
/// `src/lib.rs` plus every non-vendor `crates/<name>/src/lib.rs`.
pub fn crate_roots(root: &Path) -> std::io::Result<BTreeSet<String>> {
    let mut out = BTreeSet::new();
    if root.join("src/lib.rs").is_file() {
        out.insert("src/lib.rs".to_string());
    }
    for entry in fs::read_dir(root.join("crates"))? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name != "vendor" && entry.path().join("src/lib.rs").is_file() {
            out.insert(format!("crates/{name}/src/lib.rs"));
        }
    }
    Ok(out)
}

/// Reads the declared global lock order from `lock_order.toml` at the workspace
/// root (`order = ["counters", …]`).  A missing file means no declared order —
/// cycle detection still runs.
pub fn load_lock_order(root: &Path) -> Result<Vec<String>, String> {
    let path = root.join("lock_order.toml");
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = crate::toml::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    match doc.root.get("order") {
        Some(crate::toml::Value::StrArray(names)) => Ok(names.clone()),
        Some(_) => Err(format!(
            "{}: `order` must be an array of strings",
            path.display()
        )),
        None => Err(format!("{}: missing `order = [...]`", path.display())),
    }
}

/// A full workspace analysis.
#[derive(Debug)]
pub struct Analysis {
    /// All surviving findings, sorted by `(file, line, lint)`.
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

/// Scans every workspace file and runs the global lock-order check.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let declared = load_lock_order(root)?;
    let files = workspace_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let roots = crate_roots(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut diagnostics = Vec::new();
    let mut edges = Vec::new();
    for (rel, path) in &files {
        let src =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let scan = scan_file(rel, &src, roots.contains(rel));
        diagnostics.extend(scan.diagnostics);
        edges.extend(scan.lock_edges);
    }
    diagnostics.extend(lock_order::check(&edges, &declared));
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint.id(), a.severity).cmp(&(
            b.file.as_str(),
            b.line,
            b.lint.id(),
            b.severity,
        ))
    });
    Ok(Analysis {
        files_scanned: files.len(),
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_items_are_excluded() {
        let src = "fn live() { let t = Instant::now(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let t = Instant::now(); }\n}\n";
        let scan = scan_file("crates/runtime/src/x.rs", src, false);
        assert_eq!(scan.diagnostics.len(), 1, "{:?}", scan.diagnostics);
        assert_eq!(scan.diagnostics[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_not_excluded() {
        let src = "#[cfg(not(test))]\nfn live() { let t = Instant::now(); }\n";
        let scan = scan_file("crates/runtime/src/x.rs", src, false);
        assert_eq!(scan.diagnostics.len(), 1, "{:?}", scan.diagnostics);
    }

    #[test]
    fn allow_comment_covers_through_next_code_line() {
        let src = "// refloat-analysis: allow(wall-clock-in-deterministic-path) — this\n\
                   // timeout is caller-facing wall time by definition.\n\
                   let deadline = Instant::now();\n\
                   let second = Instant::now();\n";
        let scan = scan_file("crates/runtime/src/x.rs", src, false);
        assert_eq!(scan.diagnostics.len(), 1, "{:?}", scan.diagnostics);
        assert_eq!(
            scan.diagnostics[0].line, 4,
            "only the uncovered second read fires"
        );
    }

    #[test]
    fn allow_only_suppresses_the_named_lint() {
        let src = "// refloat-analysis: allow(unordered-iteration)\nlet t = Instant::now();\n";
        let scan = scan_file("crates/runtime/src/x.rs", src, false);
        assert_eq!(scan.diagnostics.len(), 1, "{:?}", scan.diagnostics);
    }

    #[test]
    fn crate_root_without_forbid_unsafe_is_flagged() {
        let scan = scan_file("crates/x/src/lib.rs", "//! docs\npub fn f() {}\n", true);
        assert_eq!(scan.diagnostics.len(), 1);
        assert_eq!(scan.diagnostics[0].lint, Lint::ForbidUnsafeMissing);
        let ok = scan_file(
            "crates/x/src/lib.rs",
            "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n",
            true,
        );
        assert!(ok.diagnostics.is_empty(), "{:?}", ok.diagnostics);
    }

    #[test]
    fn panic_lint_fires_only_in_service_paths() {
        let src = "fn f(r: Result<u32, ()>) -> u32 { r.unwrap() }\n";
        assert!(scan_file("crates/core/src/x.rs", src, false)
            .diagnostics
            .is_empty());
        let in_service = scan_file("crates/runtime/src/worker.rs", src, false);
        assert_eq!(
            in_service.diagnostics.len(),
            1,
            "{:?}",
            in_service.diagnostics
        );
        assert_eq!(in_service.diagnostics[0].lint, Lint::PanicInServicePath);
    }

    #[test]
    fn seeded_wall_clock_violation_in_worker_is_reported_with_file_and_line() {
        let src = "use std::time::Instant;\nfn tick() {\n    let t0 = Instant::now();\n}\n";
        let scan = scan_file("crates/runtime/src/worker.rs", src, false);
        assert_eq!(scan.diagnostics.len(), 1, "{:?}", scan.diagnostics);
        let d = &scan.diagnostics[0];
        assert_eq!(
            (d.file.as_str(), d.line, d.lint),
            (
                "crates/runtime/src/worker.rs",
                3,
                Lint::WallClockInDeterministicPath
            )
        );
    }
}
