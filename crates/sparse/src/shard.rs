//! Block-row sharding of a sparse matrix across multiple accelerator chips.
//!
//! A single simulated chip holds a bounded number of crossbar clusters; SuiteSparse-
//! class matrices blow past that budget and have to be streamed through the chip in
//! multiple re-programming rounds (§VI.B of the paper).  The alternative explored by
//! the distributed in-memory-computing line of work (Vo et al.) is to *partition the
//! operator across chips*: each chip owns a contiguous band of block-rows, every SpMV
//! runs shard-local, and the host gathers the disjoint output bands.
//!
//! The partitioner here cuts on **block-row boundaries** (multiples of `2^b` rows) so
//! that each shard blocks into exactly the same `2^b × 2^b` blocks the unsharded matrix
//! would produce — which is what makes sharded solves bitwise identical to unsharded
//! ones: every output row is accumulated from the same blocks in the same order, and
//! shards write disjoint row ranges, so no cross-shard reduction reorders floating-
//! point additions.  Shard loads are balanced by nonzero count via
//! [`balance_by_weight`](crate::parallel::balance_by_weight).

use std::ops::Range;

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::parallel;
use crate::Result;

/// A contiguous band of rows assigned to one chip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRange {
    /// Shard index (0-based, dense).
    pub index: usize,
    /// Global row range of the shard; aligned to `2^b` block-row boundaries (except
    /// that the last shard ends at `nrows`).
    pub rows: Range<usize>,
    /// Nonzeros of the full matrix that fall in `rows`.
    pub nnz: usize,
}

/// Computes block-row-aligned, nnz-balanced shard row ranges for `a`.
///
/// Returns at most `shards` non-empty ranges that tile `0..a.nrows()` in order; fewer
/// are returned when the matrix has fewer block-rows than requested shards.  Cuts fall
/// on multiples of `2^b` so each shard re-blocks identically to the unsharded matrix.
///
/// Returns an error if `b` is outside `1..=15` (the valid blocking exponents) or the
/// matrix has no rows.
pub fn block_row_shards(a: &CsrMatrix, b: u32, shards: usize) -> Result<Vec<ShardRange>> {
    if b == 0 || b > 15 {
        return Err(SparseError::InvalidParameter(format!(
            "block size exponent b must be in 1..=15, got {b}"
        )));
    }
    if a.nrows() == 0 {
        return Err(SparseError::InvalidParameter(
            "cannot shard a matrix with no rows".into(),
        ));
    }
    let bs = 1usize << b;
    let num_block_rows = a.nrows().div_ceil(bs);
    // Prefix sum of nonzeros per block-row: the balance weights.
    let row_ptr = a.row_ptr();
    let mut prefix = Vec::with_capacity(num_block_rows + 1);
    prefix.push(0usize);
    for brow in 0..num_block_rows {
        let row_end = ((brow + 1) * bs).min(a.nrows());
        prefix.push(row_ptr[row_end]);
    }
    let chunks = parallel::balance_by_weight(&prefix, shards.max(1));
    Ok(chunks
        .into_iter()
        .enumerate()
        .map(|(index, brows)| {
            let rows = (brows.start * bs)..((brows.end * bs).min(a.nrows()));
            let nnz = row_ptr[rows.end] - row_ptr[rows.start];
            ShardRange { index, rows, nnz }
        })
        .collect())
}

/// Extracts the row band `rows` of `a` as a standalone CSR matrix.
///
/// The result has `rows.len()` rows and the full column span of `a`; row contents
/// (column order and values) are copied verbatim, so SpMV over the extracted band is
/// bitwise identical to the same rows of an SpMV over `a`.
///
/// # Panics
/// Panics if `rows` is out of bounds.
pub fn extract_row_range(a: &CsrMatrix, rows: Range<usize>) -> CsrMatrix {
    assert!(
        rows.start <= rows.end && rows.end <= a.nrows(),
        "extract_row_range: rows {rows:?} outside 0..{}",
        a.nrows()
    );
    let row_ptr = a.row_ptr();
    let (lo, hi) = (row_ptr[rows.start], row_ptr[rows.end]);
    let shard_row_ptr: Vec<usize> = row_ptr[rows.start..=rows.end]
        .iter()
        .map(|&p| p - lo)
        .collect();
    let col_idx = a.col_idx()[lo..hi].to_vec();
    let vals = a.values()[lo..hi].to_vec();
    CsrMatrix::from_raw(rows.len(), a.ncols(), shard_row_ptr, col_idx, vals)
        .expect("a valid CSR row band is itself a valid CSR matrix")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn banded(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0 + i as f64 * 1e-3);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn shards_tile_the_rows_on_block_boundaries() {
        let a = banded(1000);
        for shards in [1usize, 2, 3, 4, 8] {
            let parts = block_row_shards(&a, 4, shards).unwrap();
            assert!(!parts.is_empty() && parts.len() <= shards);
            assert_eq!(parts[0].rows.start, 0);
            assert_eq!(parts.last().unwrap().rows.end, 1000);
            for w in parts.windows(2) {
                assert_eq!(w[0].rows.end, w[1].rows.start);
                assert_eq!(w[0].rows.end % 16, 0, "cut must sit on a block boundary");
            }
            assert_eq!(parts.iter().map(|p| p.nnz).sum::<usize>(), a.nnz());
        }
    }

    #[test]
    fn shard_loads_are_balanced_by_nonzeros() {
        let a = banded(4096);
        let parts = block_row_shards(&a, 4, 4).unwrap();
        assert_eq!(parts.len(), 4);
        let max = parts.iter().map(|p| p.nnz).max().unwrap();
        let min = parts.iter().map(|p| p.nnz).min().unwrap();
        assert!(max <= 2 * min, "nnz imbalance: {max} vs {min}");
    }

    #[test]
    fn extracted_band_spmv_is_bitwise_identical_to_the_full_rows() {
        let a = banded(777);
        let x: Vec<f64> = (0..777).map(|i| (i as f64 * 0.013).cos() + 0.5).collect();
        let full = a.spmv(&x);
        let parts = block_row_shards(&a, 5, 3).unwrap();
        let mut assembled = vec![0.0; 777];
        for part in &parts {
            let shard = extract_row_range(&a, part.rows.clone());
            assert_eq!(shard.nnz(), part.nnz);
            let y = shard.spmv(&x);
            assembled[part.rows.clone()].copy_from_slice(&y);
        }
        for (u, v) in full.iter().zip(assembled.iter()) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn more_shards_than_block_rows_degrades_gracefully() {
        let a = banded(20); // b = 4 -> 2 block rows
        let parts = block_row_shards(&a, 4, 16).unwrap();
        assert!(parts.len() <= 2);
        assert_eq!(parts.last().unwrap().rows.end, 20);
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let a = banded(10);
        assert!(block_row_shards(&a, 0, 2).is_err());
        assert!(block_row_shards(&a, 16, 2).is_err());
        let empty = CooMatrix::new(0, 0).to_csr();
        assert!(block_row_shards(&empty, 4, 2).is_err());
    }
}
