//! Matrix Market (`.mtx`) reader and writer.
//!
//! The paper's workloads come from the SuiteSparse collection, which distributes
//! matrices in the Matrix Market exchange format [Boisvert et al.].  This module
//! implements the subset needed for those inputs: the `coordinate` format with
//! `real` / `integer` / `pattern` fields and `general` / `symmetric` /
//! `skew-symmetric` symmetry, plus the dense `array` format for completeness.
//!
//! The synthetic generators in `refloat-matgen` are the default workload source, but
//! any SuiteSparse matrix downloaded separately can be dropped in via [`read_coo`] /
//! [`read_coo_from_str`].

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::Result;

/// How values are stored in the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// One floating-point value per entry.
    Real,
    /// One integer value per entry (parsed into `f64`).
    Integer,
    /// No value token: every stored entry is `1.0`.
    Pattern,
}

impl Field {
    /// The keyword used in the `%%MatrixMarket` header line.
    pub fn keyword(&self) -> &'static str {
        match self {
            Field::Real => "real",
            Field::Integer => "integer",
            Field::Pattern => "pattern",
        }
    }
}

/// Symmetry annotation of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symmetry {
    /// All entries stored explicitly.
    General,
    /// Lower triangle stored; `(c, r)` mirrors `(r, c)`.
    Symmetric,
    /// Strictly-lower triangle stored; `(c, r)` mirrors `-(r, c)`.  Diagonal entries
    /// are structurally zero and must not appear in the file.
    SkewSymmetric,
}

impl Symmetry {
    /// The keyword used in the `%%MatrixMarket` header line.
    pub fn keyword(&self) -> &'static str {
        match self {
            Symmetry::General => "general",
            Symmetry::Symmetric => "symmetric",
            Symmetry::SkewSymmetric => "skew-symmetric",
        }
    }
}

/// Reads a Matrix Market file into a [`CooMatrix`].
pub fn read_coo<P: AsRef<Path>>(path: P) -> Result<CooMatrix> {
    let file = File::open(path)?;
    read_coo_from_reader(BufReader::new(file))
}

/// Parses Matrix Market text into a [`CooMatrix`].
pub fn read_coo_from_str(text: &str) -> Result<CooMatrix> {
    read_coo_from_reader(BufReader::new(text.as_bytes()))
}

/// Reads a Matrix Market stream into a [`CooMatrix`].
pub fn read_coo_from_reader<R: Read>(reader: BufReader<R>) -> Result<CooMatrix> {
    let mut lines = reader.lines();

    // --- Header line: %%MatrixMarket matrix <format> <field> <symmetry>
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => return Err(SparseError::MatrixMarket("empty file".into())),
        }
    };
    let header_lc = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || !tokens[0].starts_with("%%matrixmarket") || tokens[1] != "matrix" {
        return Err(SparseError::MatrixMarket(format!(
            "bad header line: {header}"
        )));
    }
    let coordinate = match tokens[2] {
        "coordinate" => true,
        "array" => false,
        other => {
            return Err(SparseError::MatrixMarket(format!(
                "unsupported format '{other}'"
            )));
        }
    };
    let field = match tokens[3] {
        "real" | "double" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(SparseError::MatrixMarket(format!(
                "unsupported field '{other}'"
            )));
        }
    };
    let symmetry = match tokens[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(SparseError::MatrixMarket(format!(
                "unsupported symmetry '{other}'"
            )));
        }
    };
    if !coordinate && field == Field::Pattern {
        return Err(SparseError::MatrixMarket(
            "array format cannot be 'pattern'".into(),
        ));
    }

    // --- Size line (skipping comments).
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break line;
            }
            None => return Err(SparseError::MatrixMarket("missing size line".into())),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|_| bad_num(t)))
        .collect::<Result<_>>()?;

    if coordinate {
        if dims.len() != 3 {
            return Err(SparseError::MatrixMarket(format!(
                "bad coordinate size line: {size_line}"
            )));
        }
        let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
        // Symmetric entries mirror into two triplets.  The size line is untrusted
        // input, and capacity is only an optimization: saturate the doubling (no
        // arithmetic overflow) and cap the pre-allocation so an absurd declared nnz
        // cannot abort the process with a huge allocation — real entries beyond the
        // cap just grow the vectors amortized, and the entry-count check at the end
        // rejects the lie.
        const CAPACITY_CAP: usize = 1 << 22;
        let mut coo =
            CooMatrix::with_capacity(nrows, ncols, nnz.saturating_mul(2).min(CAPACITY_CAP));
        let mut read_entries = 0usize;
        for line in lines {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            let mut it = t.split_whitespace();
            let r: usize = parse_tok(it.next(), "row index")?;
            let c: usize = parse_tok(it.next(), "column index")?;
            if r == 0 || c == 0 || r > nrows || c > ncols {
                return Err(SparseError::MatrixMarket(format!(
                    "entry ({r}, {c}) outside 1-based {nrows}x{ncols} bounds"
                )));
            }
            let v = match field {
                Field::Pattern => 1.0,
                Field::Real | Field::Integer => {
                    let tok = it
                        .next()
                        .ok_or_else(|| SparseError::MatrixMarket("missing value".into()))?;
                    tok.parse::<f64>().map_err(|_| bad_num(tok))?
                }
            };
            let (r0, c0) = (r - 1, c - 1);
            match symmetry {
                Symmetry::General => coo.push(r0, c0, v),
                Symmetry::Symmetric => {
                    coo.push(r0, c0, v);
                    if r0 != c0 {
                        coo.push(c0, r0, v);
                    }
                }
                Symmetry::SkewSymmetric => {
                    // A = −Aᵀ forces a zero diagonal, so the Matrix Market format
                    // forbids storing diagonal entries of skew-symmetric matrices.
                    // Accepting one silently used to corrupt A (a nonzero diagonal
                    // value has no mirrored negation, so A ≠ −Aᵀ afterwards).
                    if r0 == c0 {
                        return Err(SparseError::MatrixMarket(format!(
                            "explicit diagonal entry ({r}, {c}) is illegal in a \
                             skew-symmetric matrix"
                        )));
                    }
                    coo.push(r0, c0, v);
                    coo.push(c0, r0, -v);
                }
            }
            read_entries += 1;
        }
        if read_entries != nnz {
            return Err(SparseError::MatrixMarket(format!(
                "expected {nnz} entries, found {read_entries}"
            )));
        }
        Ok(coo)
    } else {
        // Dense array format: column-major values.
        if dims.len() != 2 {
            return Err(SparseError::MatrixMarket(format!(
                "bad array size line: {size_line}"
            )));
        }
        let (nrows, ncols) = (dims[0], dims[1]);
        let mut values = Vec::with_capacity(nrows * ncols);
        for line in lines {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            for tok in t.split_whitespace() {
                values.push(tok.parse::<f64>().map_err(|_| bad_num(tok))?);
            }
        }
        let expected = match symmetry {
            Symmetry::General => nrows * ncols,
            // Lower triangle including the diagonal.
            Symmetry::Symmetric => {
                if nrows != ncols {
                    return Err(SparseError::MatrixMarket(
                        "symmetric array matrix must be square".into(),
                    ));
                }
                nrows * (nrows + 1) / 2
            }
            // Strictly-lower triangle: the diagonal of a skew-symmetric matrix is
            // structurally zero and is not stored.
            Symmetry::SkewSymmetric => {
                if nrows != ncols {
                    return Err(SparseError::MatrixMarket(
                        "skew-symmetric array matrix must be square".into(),
                    ));
                }
                nrows * nrows.saturating_sub(1) / 2
            }
        };
        if values.len() != expected {
            return Err(SparseError::MatrixMarket(format!(
                "expected {expected} array values, found {}",
                values.len()
            )));
        }
        let mut coo = CooMatrix::with_capacity(nrows, ncols, values.len());
        match symmetry {
            Symmetry::General => {
                let mut k = 0;
                for c in 0..ncols {
                    for r in 0..nrows {
                        coo.push(r, c, values[k]);
                        k += 1;
                    }
                }
            }
            Symmetry::Symmetric => {
                let mut k = 0;
                for c in 0..ncols {
                    for r in c..nrows {
                        let v = values[k];
                        coo.push(r, c, v);
                        if r != c {
                            coo.push(c, r, v);
                        }
                        k += 1;
                    }
                }
            }
            Symmetry::SkewSymmetric => {
                let mut k = 0;
                for c in 0..ncols {
                    for r in (c + 1)..nrows {
                        let v = values[k];
                        coo.push(r, c, v);
                        coo.push(c, r, -v);
                        k += 1;
                    }
                }
            }
        }
        Ok(coo)
    }
}

fn bad_num(tok: &str) -> SparseError {
    SparseError::MatrixMarket(format!("could not parse number '{tok}'"))
}

fn parse_tok(tok: Option<&str>, what: &str) -> Result<usize> {
    let tok = tok.ok_or_else(|| SparseError::MatrixMarket(format!("missing {what}")))?;
    tok.parse::<usize>().map_err(|_| bad_num(tok))
}

/// Writes a [`CooMatrix`] as a `coordinate real general` Matrix Market file.
pub fn write_coo<P: AsRef<Path>>(path: P, a: &CooMatrix, comment: &str) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    write_coo_to_writer(&mut w, a, comment)
}

/// Writes a [`CooMatrix`] in Matrix Market format to any writer.
pub fn write_coo_to_writer<W: Write>(w: &mut W, a: &CooMatrix, comment: &str) -> Result<()> {
    write_coo_as(w, a, Field::Real, Symmetry::General, comment)
}

/// Writes a [`CooMatrix`] in `coordinate` Matrix Market format with an explicit field
/// and symmetry annotation.
///
/// For [`Symmetry::Symmetric`] only the lower triangle (`r ≥ c`) is stored; for
/// [`Symmetry::SkewSymmetric`] only the strictly-lower triangle (`r > c`).  The caller
/// is responsible for the matrix actually having the claimed symmetry — the writer
/// keeps the lower triangle and drops the mirrored entries, exactly the inverse of what
/// [`read_coo_from_reader`] reconstructs.  [`Field::Integer`] values are written
/// rounded to the nearest integer; [`Field::Pattern`] entries carry no value token.
///
/// Returns an error when a symmetric/skew-symmetric annotation is requested for a
/// non-square matrix, or when a skew-symmetric matrix stores a nonzero diagonal entry
/// (illegal in the format, see the reader).
pub fn write_coo_as<W: Write>(
    w: &mut W,
    a: &CooMatrix,
    field: Field,
    symmetry: Symmetry,
    comment: &str,
) -> Result<()> {
    if symmetry != Symmetry::General && a.nrows() != a.ncols() {
        return Err(SparseError::MatrixMarket(format!(
            "{} matrices must be square, got {}x{}",
            symmetry.keyword(),
            a.nrows(),
            a.ncols()
        )));
    }
    let keep = |r: usize, c: usize| match symmetry {
        Symmetry::General => true,
        Symmetry::Symmetric => r >= c,
        Symmetry::SkewSymmetric => r > c,
    };
    if symmetry == Symmetry::SkewSymmetric {
        for (r, c, v) in a.iter() {
            if r == c && v != 0.0 {
                return Err(SparseError::MatrixMarket(format!(
                    "skew-symmetric matrix has nonzero diagonal entry ({r}, {r})"
                )));
            }
        }
    }
    writeln!(
        w,
        "%%MatrixMarket matrix coordinate {} {}",
        field.keyword(),
        symmetry.keyword()
    )?;
    for line in comment.lines() {
        writeln!(w, "% {line}")?;
    }
    let stored = a.iter().filter(|&(r, c, _)| keep(r, c)).count();
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), stored)?;
    for (r, c, v) in a.iter() {
        if !keep(r, c) {
            continue;
        }
        match field {
            Field::Real => writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?,
            Field::Integer => writeln!(w, "{} {} {}", r + 1, c + 1, v.round() as i64)?,
            Field::Pattern => writeln!(w, "{} {}", r + 1, c + 1)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_general_coordinate_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 2 3.5\n\
                    3 1 -1.0\n\
                    3 3 1e-3\n";
        let a = read_coo_from_str(text).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 4);
        let csr = a.to_csr();
        assert_eq!(csr.get(0, 0), 2.0);
        assert_eq!(csr.get(2, 0), -1.0);
        assert_eq!(csr.get(2, 2), 1e-3);
    }

    #[test]
    fn parses_symmetric_and_mirrors_offdiagonals() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 3\n\
                    1 1 4.0\n\
                    2 1 -1.0\n\
                    3 3 2.0\n";
        let a = read_coo_from_str(text).unwrap();
        assert_eq!(a.nnz(), 4); // the (2,1) entry is mirrored to (1,2)
        let csr = a.to_csr();
        assert_eq!(csr.get(0, 1), -1.0);
        assert_eq!(csr.get(1, 0), -1.0);
        assert!(csr.is_symmetric(0.0));
    }

    #[test]
    fn parses_skew_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 3.0\n";
        let a = read_coo_from_str(text).unwrap();
        let csr = a.to_csr();
        assert_eq!(csr.get(1, 0), 3.0);
        assert_eq!(csr.get(0, 1), -3.0);
    }

    #[test]
    fn parses_pattern_as_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let a = read_coo_from_str(text).unwrap();
        assert_eq!(a.values(), &[1.0, 1.0]);
    }

    #[test]
    fn parses_dense_array_general() {
        let text = "%%MatrixMarket matrix array real general\n\
                    2 2\n\
                    1.0\n3.0\n2.0\n4.0\n";
        let a = read_coo_from_str(text).unwrap();
        let csr = a.to_csr();
        // Column-major: [[1, 2], [3, 4]]
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(1, 0), 3.0);
        assert_eq!(csr.get(0, 1), 2.0);
        assert_eq!(csr.get(1, 1), 4.0);
    }

    #[test]
    fn parses_dense_array_symmetric() {
        let text = "%%MatrixMarket matrix array real symmetric\n\
                    2 2\n\
                    1.0\n5.0\n2.0\n";
        let a = read_coo_from_str(text).unwrap();
        let csr = a.to_csr();
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(1, 0), 5.0);
        assert_eq!(csr.get(0, 1), 5.0);
        assert_eq!(csr.get(1, 1), 2.0);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(read_coo_from_str("").is_err());
        assert!(read_coo_from_str("%%MatrixMarket matrix coordinate real general\n").is_err());
        assert!(read_coo_from_str(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 3.0\n"
        )
        .is_err());
        assert!(read_coo_from_str(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.0\n"
        )
        .is_err());
        assert!(read_coo_from_str(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 2.0\n"
        )
        .is_err());
    }

    #[test]
    fn absurd_declared_nnz_is_rejected_without_huge_preallocation() {
        // The size line is untrusted: a declared quintillion entries must surface as
        // a parse error (entry-count mismatch), not a process-aborting allocation.
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 1000000000000000000\n\
                    1 1 3.0\n";
        let err = read_coo_from_str(text).unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
    }

    #[test]
    fn rejects_explicit_skew_symmetric_diagonal() {
        // Illegal per the format; accepting it silently used to corrupt A ≠ −Aᵀ.
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 2\n\
                    2 1 3.0\n\
                    2 2 1.0\n";
        let err = read_coo_from_str(text).unwrap_err();
        assert!(err.to_string().contains("skew-symmetric"), "{err}");
        // Even a zero-valued diagonal entry is structurally illegal.
        let zero_diag = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                         2 2 1\n\
                         1 1 0.0\n";
        assert!(read_coo_from_str(zero_diag).is_err());
    }

    #[test]
    fn parses_dense_array_skew_symmetric_without_diagonal() {
        // Strictly-lower triangle only: 3 values for a 3x3 skew matrix.
        let text = "%%MatrixMarket matrix array real skew-symmetric\n\
                    3 3\n\
                    1.0\n2.0\n3.0\n";
        let a = read_coo_from_str(text).unwrap();
        let csr = a.to_csr();
        assert_eq!(csr.get(1, 0), 1.0);
        assert_eq!(csr.get(0, 1), -1.0);
        assert_eq!(csr.get(2, 0), 2.0);
        assert_eq!(csr.get(2, 1), 3.0);
        assert_eq!(csr.get(1, 2), -3.0);
        assert_eq!(csr.get(0, 0), 0.0);
        // The full lower triangle (4 values would include a diagonal slot) is malformed.
        let with_diag = "%%MatrixMarket matrix array real skew-symmetric\n\
                         3 3\n\
                         0.0\n1.0\n2.0\n3.0\n";
        assert!(read_coo_from_str(with_diag).is_err());
    }

    #[test]
    fn writer_supports_symmetry_and_field_annotations() {
        // A symmetric matrix: write lower triangle, read back the full matrix.
        let mut sym = CooMatrix::new(3, 3);
        sym.push(0, 0, 2.0);
        sym.push(1, 0, -1.0);
        sym.push(0, 1, -1.0);
        sym.push(2, 2, 4.0);
        let mut buf = Vec::new();
        write_coo_as(&mut buf, &sym, Field::Real, Symmetry::Symmetric, "sym").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("coordinate real symmetric"));
        assert_eq!(read_coo_from_str(&text).unwrap().to_csr(), sym.to_csr());

        // Skew-symmetric: strictly-lower triangle only, nonzero diagonal rejected.
        let mut skew = CooMatrix::new(2, 2);
        skew.push(1, 0, 3.0);
        skew.push(0, 1, -3.0);
        let mut buf = Vec::new();
        write_coo_as(&mut buf, &skew, Field::Integer, Symmetry::SkewSymmetric, "").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("coordinate integer skew-symmetric"));
        assert_eq!(read_coo_from_str(&text).unwrap().to_csr(), skew.to_csr());

        let mut bad = CooMatrix::new(2, 2);
        bad.push(0, 0, 1.0);
        let mut buf = Vec::new();
        assert!(write_coo_as(&mut buf, &bad, Field::Real, Symmetry::SkewSymmetric, "").is_err());

        // Non-square symmetric annotation is rejected.
        let rect = CooMatrix::new(2, 3);
        let mut buf = Vec::new();
        assert!(write_coo_as(&mut buf, &rect, Field::Real, Symmetry::Symmetric, "").is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = CooMatrix::new(4, 3);
        a.push(0, 0, 1.25);
        a.push(3, 2, -7.5e-11);
        a.push(1, 1, 3.0);
        let mut buf = Vec::new();
        write_coo_to_writer(&mut buf, &a, "roundtrip test").unwrap();
        let text = String::from_utf8(buf).unwrap();
        let b = read_coo_from_str(&text).unwrap();
        assert_eq!(a.to_csr(), b.to_csr());
    }
}
