//! Matrix Market (`.mtx`) reader and writer.
//!
//! The paper's workloads come from the SuiteSparse collection, which distributes
//! matrices in the Matrix Market exchange format [Boisvert et al.].  This module
//! implements the subset needed for those inputs: the `coordinate` format with
//! `real` / `integer` / `pattern` fields and `general` / `symmetric` /
//! `skew-symmetric` symmetry, plus the dense `array` format for completeness.
//!
//! The synthetic generators in `refloat-matgen` are the default workload source, but
//! any SuiteSparse matrix downloaded separately can be dropped in via [`read_coo`] /
//! [`read_coo_from_str`].

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::Result;

/// How values are stored in the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Symmetry annotation of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Reads a Matrix Market file into a [`CooMatrix`].
pub fn read_coo<P: AsRef<Path>>(path: P) -> Result<CooMatrix> {
    let file = File::open(path)?;
    read_coo_from_reader(BufReader::new(file))
}

/// Parses Matrix Market text into a [`CooMatrix`].
pub fn read_coo_from_str(text: &str) -> Result<CooMatrix> {
    read_coo_from_reader(BufReader::new(text.as_bytes()))
}

/// Reads a Matrix Market stream into a [`CooMatrix`].
pub fn read_coo_from_reader<R: Read>(reader: BufReader<R>) -> Result<CooMatrix> {
    let mut lines = reader.lines();

    // --- Header line: %%MatrixMarket matrix <format> <field> <symmetry>
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => return Err(SparseError::MatrixMarket("empty file".into())),
        }
    };
    let header_lc = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || !tokens[0].starts_with("%%matrixmarket") || tokens[1] != "matrix" {
        return Err(SparseError::MatrixMarket(format!(
            "bad header line: {header}"
        )));
    }
    let coordinate = match tokens[2] {
        "coordinate" => true,
        "array" => false,
        other => {
            return Err(SparseError::MatrixMarket(format!(
                "unsupported format '{other}'"
            )));
        }
    };
    let field = match tokens[3] {
        "real" | "double" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(SparseError::MatrixMarket(format!(
                "unsupported field '{other}'"
            )));
        }
    };
    let symmetry = match tokens[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(SparseError::MatrixMarket(format!(
                "unsupported symmetry '{other}'"
            )));
        }
    };
    if !coordinate && field == Field::Pattern {
        return Err(SparseError::MatrixMarket(
            "array format cannot be 'pattern'".into(),
        ));
    }

    // --- Size line (skipping comments).
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break line;
            }
            None => return Err(SparseError::MatrixMarket("missing size line".into())),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|_| bad_num(t)))
        .collect::<Result<_>>()?;

    if coordinate {
        if dims.len() != 3 {
            return Err(SparseError::MatrixMarket(format!(
                "bad coordinate size line: {size_line}"
            )));
        }
        let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
        let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz * 2);
        let mut read_entries = 0usize;
        for line in lines {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            let mut it = t.split_whitespace();
            let r: usize = parse_tok(it.next(), "row index")?;
            let c: usize = parse_tok(it.next(), "column index")?;
            if r == 0 || c == 0 || r > nrows || c > ncols {
                return Err(SparseError::MatrixMarket(format!(
                    "entry ({r}, {c}) outside 1-based {nrows}x{ncols} bounds"
                )));
            }
            let v = match field {
                Field::Pattern => 1.0,
                Field::Real | Field::Integer => {
                    let tok = it
                        .next()
                        .ok_or_else(|| SparseError::MatrixMarket("missing value".into()))?;
                    tok.parse::<f64>().map_err(|_| bad_num(tok))?
                }
            };
            let (r0, c0) = (r - 1, c - 1);
            match symmetry {
                Symmetry::General => coo.push(r0, c0, v),
                Symmetry::Symmetric => {
                    coo.push(r0, c0, v);
                    if r0 != c0 {
                        coo.push(c0, r0, v);
                    }
                }
                Symmetry::SkewSymmetric => {
                    coo.push(r0, c0, v);
                    if r0 != c0 {
                        coo.push(c0, r0, -v);
                    }
                }
            }
            read_entries += 1;
        }
        if read_entries != nnz {
            return Err(SparseError::MatrixMarket(format!(
                "expected {nnz} entries, found {read_entries}"
            )));
        }
        Ok(coo)
    } else {
        // Dense array format: column-major values.
        if dims.len() != 2 {
            return Err(SparseError::MatrixMarket(format!(
                "bad array size line: {size_line}"
            )));
        }
        let (nrows, ncols) = (dims[0], dims[1]);
        let mut values = Vec::with_capacity(nrows * ncols);
        for line in lines {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            for tok in t.split_whitespace() {
                values.push(tok.parse::<f64>().map_err(|_| bad_num(tok))?);
            }
        }
        let expected = match symmetry {
            Symmetry::General => nrows * ncols,
            // Lower triangle including diagonal.
            Symmetry::Symmetric | Symmetry::SkewSymmetric => {
                if nrows != ncols {
                    return Err(SparseError::MatrixMarket(
                        "symmetric array matrix must be square".into(),
                    ));
                }
                nrows * (nrows + 1) / 2
            }
        };
        if values.len() != expected {
            return Err(SparseError::MatrixMarket(format!(
                "expected {expected} array values, found {}",
                values.len()
            )));
        }
        let mut coo = CooMatrix::with_capacity(nrows, ncols, values.len());
        match symmetry {
            Symmetry::General => {
                let mut k = 0;
                for c in 0..ncols {
                    for r in 0..nrows {
                        coo.push(r, c, values[k]);
                        k += 1;
                    }
                }
            }
            Symmetry::Symmetric | Symmetry::SkewSymmetric => {
                let skew = symmetry == Symmetry::SkewSymmetric;
                let mut k = 0;
                for c in 0..ncols {
                    for r in c..nrows {
                        let v = values[k];
                        coo.push(r, c, v);
                        if r != c {
                            coo.push(c, r, if skew { -v } else { v });
                        }
                        k += 1;
                    }
                }
            }
        }
        Ok(coo)
    }
}

fn bad_num(tok: &str) -> SparseError {
    SparseError::MatrixMarket(format!("could not parse number '{tok}'"))
}

fn parse_tok(tok: Option<&str>, what: &str) -> Result<usize> {
    let tok = tok.ok_or_else(|| SparseError::MatrixMarket(format!("missing {what}")))?;
    tok.parse::<usize>().map_err(|_| bad_num(tok))
}

/// Writes a [`CooMatrix`] as a `coordinate real general` Matrix Market file.
pub fn write_coo<P: AsRef<Path>>(path: P, a: &CooMatrix, comment: &str) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    write_coo_to_writer(&mut w, a, comment)
}

/// Writes a [`CooMatrix`] in Matrix Market format to any writer.
pub fn write_coo_to_writer<W: Write>(w: &mut W, a: &CooMatrix, comment: &str) -> Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    for line in comment.lines() {
        writeln!(w, "% {line}")?;
    }
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (r, c, v) in a.iter() {
        writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_general_coordinate_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 2 3.5\n\
                    3 1 -1.0\n\
                    3 3 1e-3\n";
        let a = read_coo_from_str(text).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 4);
        let csr = a.to_csr();
        assert_eq!(csr.get(0, 0), 2.0);
        assert_eq!(csr.get(2, 0), -1.0);
        assert_eq!(csr.get(2, 2), 1e-3);
    }

    #[test]
    fn parses_symmetric_and_mirrors_offdiagonals() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 3\n\
                    1 1 4.0\n\
                    2 1 -1.0\n\
                    3 3 2.0\n";
        let a = read_coo_from_str(text).unwrap();
        assert_eq!(a.nnz(), 4); // the (2,1) entry is mirrored to (1,2)
        let csr = a.to_csr();
        assert_eq!(csr.get(0, 1), -1.0);
        assert_eq!(csr.get(1, 0), -1.0);
        assert!(csr.is_symmetric(0.0));
    }

    #[test]
    fn parses_skew_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 3.0\n";
        let a = read_coo_from_str(text).unwrap();
        let csr = a.to_csr();
        assert_eq!(csr.get(1, 0), 3.0);
        assert_eq!(csr.get(0, 1), -3.0);
    }

    #[test]
    fn parses_pattern_as_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let a = read_coo_from_str(text).unwrap();
        assert_eq!(a.values(), &[1.0, 1.0]);
    }

    #[test]
    fn parses_dense_array_general() {
        let text = "%%MatrixMarket matrix array real general\n\
                    2 2\n\
                    1.0\n3.0\n2.0\n4.0\n";
        let a = read_coo_from_str(text).unwrap();
        let csr = a.to_csr();
        // Column-major: [[1, 2], [3, 4]]
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(1, 0), 3.0);
        assert_eq!(csr.get(0, 1), 2.0);
        assert_eq!(csr.get(1, 1), 4.0);
    }

    #[test]
    fn parses_dense_array_symmetric() {
        let text = "%%MatrixMarket matrix array real symmetric\n\
                    2 2\n\
                    1.0\n5.0\n2.0\n";
        let a = read_coo_from_str(text).unwrap();
        let csr = a.to_csr();
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(1, 0), 5.0);
        assert_eq!(csr.get(0, 1), 5.0);
        assert_eq!(csr.get(1, 1), 2.0);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(read_coo_from_str("").is_err());
        assert!(read_coo_from_str("%%MatrixMarket matrix coordinate real general\n").is_err());
        assert!(read_coo_from_str(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 3.0\n"
        )
        .is_err());
        assert!(read_coo_from_str(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.0\n"
        )
        .is_err());
        assert!(read_coo_from_str(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 2.0\n"
        )
        .is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = CooMatrix::new(4, 3);
        a.push(0, 0, 1.25);
        a.push(3, 2, -7.5e-11);
        a.push(1, 1, 3.0);
        let mut buf = Vec::new();
        write_coo_to_writer(&mut buf, &a, "roundtrip test").unwrap();
        let text = String::from_utf8(buf).unwrap();
        let b = read_coo_from_str(&text).unwrap();
        assert_eq!(a.to_csr(), b.to_csr());
    }
}
