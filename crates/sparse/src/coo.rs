//! Coordinate (triplet) sparse matrix storage.
//!
//! COO is the construction and interchange format: Matrix Market files decode to it, the
//! synthetic workload generators in `refloat-matgen` emit it, and the CSR / blocked
//! formats used by the compute kernels are built from it.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::Result;

/// A sparse matrix stored as `(row, col, value)` triplets.
///
/// Duplicate entries are permitted while building; [`CooMatrix::compress`] (or any
/// conversion to CSR) sums them, which matches the usual finite-element assembly
/// semantics used by the SuiteSparse matrices in the paper's Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with reserved capacity for `nnz` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Builds a matrix from pre-existing triplet arrays.
    ///
    /// Returns an error if the arrays disagree in length or any index is out of bounds.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<usize>,
        cols: Vec<usize>,
        vals: Vec<f64>,
    ) -> Result<Self> {
        if rows.len() != vals.len() {
            return Err(SparseError::LengthMismatch {
                what: "COO rows vs values",
                expected: vals.len(),
                actual: rows.len(),
            });
        }
        if cols.len() != vals.len() {
            return Err(SparseError::LengthMismatch {
                what: "COO cols vs values",
                expected: vals.len(),
                actual: cols.len(),
            });
        }
        for (&r, &c) in rows.iter().zip(cols.iter()) {
            if r >= nrows || c >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows,
                    ncols,
                });
            }
        }
        Ok(CooMatrix {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        })
    }

    /// Appends one entry. Entries with value exactly `0.0` are silently dropped.
    ///
    /// # Panics
    /// Panics if the index is out of bounds (construction-time programming error).
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "COO push: entry ({row}, {col}) outside {}x{} matrix",
            self.nrows,
            self.ncols
        );
        if val == 0.0 {
            return;
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Appends an entry and, if `row != col`, its mirrored entry — convenient when
    /// assembling symmetric matrices from a lower/upper triangle (the Matrix Market
    /// `symmetric` convention).
    pub fn push_sym(&mut self, row: usize, col: usize, val: f64) {
        self.push(row, col, val);
        if row != col {
            self.push(col, row, val);
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted separately until [`compress`](Self::compress)).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row indices of the stored triplets.
    pub fn row_indices(&self) -> &[usize] {
        &self.rows
    }

    /// Column indices of the stored triplets.
    pub fn col_indices(&self) -> &[usize] {
        &self.cols
    }

    /// Values of the stored triplets.
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Iterates over `(row, col, value)` triplets in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Sorts entries into row-major order and sums duplicates in place.
    pub fn compress(&mut self) {
        if self.vals.is_empty() {
            return;
        }
        let mut order: Vec<usize> = (0..self.vals.len()).collect();
        order.sort_unstable_by_key(|&k| (self.rows[k], self.cols[k]));

        let mut rows = Vec::with_capacity(self.vals.len());
        let mut cols = Vec::with_capacity(self.vals.len());
        let mut vals = Vec::with_capacity(self.vals.len());
        for &k in &order {
            let (r, c, v) = (self.rows[k], self.cols[k], self.vals[k]);
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    *vals.last_mut().expect("vals nonempty when rows nonempty") += v;
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Converts to CSR, summing duplicate entries.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_coo(self)
    }

    /// Returns the transposed matrix (triplets with rows and columns swapped).
    pub fn transpose(&self) -> CooMatrix {
        CooMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Checks structural and numerical symmetry within an absolute tolerance.
    ///
    /// This goes through CSR so duplicates are summed first; intended for test-sized
    /// matrices and workload validation, not for hot paths.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        self.to_csr().is_symmetric(tol)
    }

    /// Dense `y = A x` reference product (O(nnz)); used by tests as ground truth.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "COO spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "COO spmv: y length mismatch");
        for yi in y.iter_mut() {
            *yi = 0.0;
        }
        for ((&r, &c), &v) in self.rows.iter().zip(self.cols.iter()).zip(self.vals.iter()) {
            y[r] += v * x[c];
        }
    }

    /// Scales every stored value by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in self.vals.iter_mut() {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CooMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut a = CooMatrix::new(3, 3);
        a.push(0, 0, 1.0);
        a.push(0, 2, 2.0);
        a.push(1, 1, 3.0);
        a.push(2, 0, 4.0);
        a.push(2, 2, 5.0);
        a
    }

    #[test]
    fn push_and_dims() {
        let a = example();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn zero_values_are_dropped() {
        let mut a = CooMatrix::new(2, 2);
        a.push(0, 0, 0.0);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn push_sym_mirrors_offdiagonal_only() {
        let mut a = CooMatrix::new(3, 3);
        a.push_sym(0, 1, 2.0);
        a.push_sym(2, 2, 7.0);
        assert_eq!(a.nnz(), 3);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn from_triplets_validates() {
        let ok = CooMatrix::from_triplets(2, 2, vec![0, 1], vec![1, 0], vec![1.0, 2.0]);
        assert!(ok.is_ok());
        let bad_len = CooMatrix::from_triplets(2, 2, vec![0], vec![1, 0], vec![1.0, 2.0]);
        assert!(matches!(bad_len, Err(SparseError::LengthMismatch { .. })));
        let bad_idx = CooMatrix::from_triplets(2, 2, vec![0, 5], vec![1, 0], vec![1.0, 2.0]);
        assert!(matches!(bad_idx, Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_out_of_bounds_panics() {
        let mut a = CooMatrix::new(2, 2);
        a.push(2, 0, 1.0);
    }

    #[test]
    fn compress_sums_duplicates_and_sorts() {
        let mut a = CooMatrix::new(2, 2);
        a.push(1, 1, 1.0);
        a.push(0, 0, 2.0);
        a.push(1, 1, 3.0);
        a.compress();
        assert_eq!(a.nnz(), 2);
        let triplets: Vec<_> = a.iter().collect();
        assert_eq!(triplets, vec![(0, 0, 2.0), (1, 1, 4.0)]);
    }

    #[test]
    fn spmv_matches_dense_arithmetic() {
        let a = example();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv_into(&x, &mut y);
        assert_eq!(y, [1.0 + 6.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = example();
        let at = a.transpose();
        let mut x = [0.0; 3];
        let mut y = [0.0; 3];
        // (A^T)_{ij} = A_{ji}: check one representative entry via spmv with basis vector.
        let e0 = [1.0, 0.0, 0.0];
        a.spmv_into(&e0, &mut x); // column 0 of A
        at.spmv_into(&e0, &mut y); // column 0 of A^T = row 0 of A
        assert_eq!(x, [1.0, 0.0, 4.0]);
        assert_eq!(y, [1.0, 0.0, 2.0]);
    }

    #[test]
    fn symmetry_check() {
        let a = example();
        assert!(!a.is_symmetric(1e-12));
        let mut s = CooMatrix::new(2, 2);
        s.push(0, 0, 2.0);
        s.push(0, 1, -1.0);
        s.push(1, 0, -1.0);
        s.push(1, 1, 2.0);
        assert!(s.is_symmetric(1e-12));
    }

    #[test]
    fn scale_multiplies_all_values() {
        let mut a = example();
        a.scale(2.0);
        assert_eq!(
            a.values().iter().sum::<f64>(),
            2.0 * (1.0 + 2.0 + 3.0 + 4.0 + 5.0)
        );
    }
}
