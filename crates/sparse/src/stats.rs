//! Matrix statistics used to build the workload inventory (Table V) and the exponent
//! locality study (Fig. 3d).

use crate::csr::CsrMatrix;

/// Summary statistics of a sparse matrix, mirroring the columns the paper reports in
/// Table V plus the value-magnitude information the ReFloat format analysis needs.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// Average nonzeros per row (the paper's `NNZ/R` sparsity metric).
    pub nnz_per_row: f64,
    /// Maximum nonzeros in any row.
    pub max_row_nnz: usize,
    /// Structural bandwidth: max |row − col| over stored entries.
    pub bandwidth: usize,
    /// Whether the matrix is numerically symmetric (tolerance 1e-12 · max|a_ij|).
    pub symmetric: bool,
    /// Largest absolute nonzero value.
    pub max_abs: f64,
    /// Smallest absolute nonzero value (0 when the matrix is empty).
    pub min_abs: f64,
    /// Unbiased binary exponent of `max_abs` (i.e. `floor(log2 max_abs)`).
    pub max_exponent: i32,
    /// Unbiased binary exponent of `min_abs`.
    pub min_exponent: i32,
}

impl MatrixStats {
    /// Computes statistics for a CSR matrix.
    pub fn compute(a: &CsrMatrix) -> Self {
        let nnz = a.nnz();
        let nrows = a.nrows();
        let ncols = a.ncols();
        let mut max_row_nnz = 0usize;
        let mut bandwidth = 0usize;
        for r in 0..nrows {
            let (cols, _) = a.row(r);
            max_row_nnz = max_row_nnz.max(cols.len());
            for &c in cols {
                bandwidth = bandwidth.max(r.abs_diff(c));
            }
        }
        let max_abs = a.max_abs();
        let min_abs = a.min_abs_nonzero().unwrap_or(0.0);
        let symmetric = nrows == ncols && a.is_symmetric(1e-12 * max_abs.max(1.0));
        MatrixStats {
            nrows,
            ncols,
            nnz,
            nnz_per_row: if nrows == 0 {
                0.0
            } else {
                nnz as f64 / nrows as f64
            },
            max_row_nnz,
            bandwidth,
            symmetric,
            max_abs,
            min_abs,
            max_exponent: exponent_of(max_abs),
            min_exponent: exponent_of(min_abs),
        }
    }

    /// The number of binades spanned by the nonzero magnitudes
    /// (`max_exponent − min_exponent`); 0 for empty matrices.
    ///
    /// This is the "exponent range of the whole matrix" quantity in the Fig. 3(d)
    /// locality discussion: the number of exponent *bits* needed to cover the matrix is
    /// `ceil(log2(range + 1))`.
    pub fn exponent_range(&self) -> u32 {
        if self.nnz == 0 {
            0
        } else {
            (self.max_exponent - self.min_exponent).max(0) as u32
        }
    }
}

/// The unbiased binary exponent of `|v|`, i.e. `floor(log2 |v|)`; 0 for `v == 0`.
pub fn exponent_of(v: f64) -> i32 {
    if v == 0.0 || !v.is_finite() {
        0
    } else {
        // f64::log2 is exact enough only away from powers of two; use the bit pattern.
        let bits = v.abs().to_bits();
        let biased = ((bits >> 52) & 0x7ff) as i32;
        if biased == 0 {
            // Subnormal: value = frac · 2^-1074, so floor(log2) follows the MSB of frac.
            let frac = bits & ((1u64 << 52) - 1);
            (63 - frac.leading_zeros() as i32) - 1074
        } else {
            biased - 1023
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    #[test]
    fn exponent_of_matches_log2_floor() {
        assert_eq!(exponent_of(1.0), 0);
        assert_eq!(exponent_of(1.99), 0);
        assert_eq!(exponent_of(2.0), 1);
        assert_eq!(exponent_of(0.5), -1);
        assert_eq!(exponent_of(-8.0), 3);
        assert_eq!(exponent_of(1.5e-300), -996);
        assert_eq!(exponent_of(0.0), 0);
        for &v in &[3.7e-12, 9.1e4, 1.0e308, 2.2e-308] {
            assert_eq!(exponent_of(v), v.abs().log2().floor() as i32, "v = {v}");
        }
    }

    #[test]
    fn stats_of_small_matrix() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push_sym(0, 1, -1.0);
        coo.push(0, 0, 4.0);
        coo.push(1, 1, 4.0);
        coo.push(2, 2, 0.25);
        coo.push(3, 3, 1024.0);
        coo.push_sym(0, 3, 2.0);
        let a = coo.to_csr();
        let s = MatrixStats::compute(&a);
        assert_eq!(s.nrows, 4);
        assert_eq!(s.nnz, 8);
        assert!(s.symmetric);
        assert_eq!(s.max_row_nnz, 3);
        assert_eq!(s.bandwidth, 3);
        assert_eq!(s.max_abs, 1024.0);
        assert_eq!(s.min_abs, 0.25);
        assert_eq!(s.max_exponent, 10);
        assert_eq!(s.min_exponent, -2);
        assert_eq!(s.exponent_range(), 12);
        assert!((s.nnz_per_row - 2.0).abs() < 1e-15);
    }

    #[test]
    fn empty_matrix_stats_are_zeroed() {
        let a = CooMatrix::new(3, 3).to_csr();
        let s = MatrixStats::compute(&a);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.exponent_range(), 0);
        assert_eq!(s.min_abs, 0.0);
    }

    #[test]
    fn asymmetric_matrix_is_flagged() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let s = MatrixStats::compute(&coo.to_csr());
        assert!(!s.symmetric);
    }
}
