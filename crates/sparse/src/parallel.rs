//! Minimal data-parallel helpers built on scoped threads.
//!
//! The HPC guides used in this workspace recommend Rayon-style data parallelism: split
//! the work into independent contiguous chunks, hand each chunk to a worker, and never
//! share mutable state between workers.  The kernels here (parallel SpMV, parallel block
//! quantization in `refloat-core`, parameter sweeps in the bench harness) only need that
//! pattern, so instead of pulling in a full work-stealing runtime we provide two small
//! primitives over [`std::thread::scope`]:
//!
//! * [`even_ranges`] / [`balance_by_weight`] — partition an index space into contiguous
//!   chunks, either evenly or proportionally to a prefix-sum weight (e.g. the CSR
//!   `row_ptr`, so each worker gets roughly the same number of nonzeros), and
//! * [`scoped_chunks`] — run a closure on disjoint mutable sub-slices of an output
//!   buffer, one worker per chunk.

use std::ops::Range;

/// Splits `0..n` into at most `chunks` contiguous ranges of nearly equal length.
///
/// Fewer ranges are returned when `n < chunks`; empty ranges are never returned
/// (except that an empty input produces an empty vector).
pub fn even_ranges(n: usize, chunks: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let chunks = chunks.max(1).min(n);
    let base = n / chunks;
    let rem = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits `0..prefix.len()-1` into at most `chunks` contiguous ranges whose total
/// *weights* are balanced, where `prefix` is a non-decreasing prefix-sum array
/// (`prefix[i+1] - prefix[i]` is the weight of item `i`, e.g. nonzeros in row `i`).
///
/// # Panics
/// Panics if `prefix` is empty.
pub fn balance_by_weight(prefix: &[usize], chunks: usize) -> Vec<Range<usize>> {
    assert!(
        !prefix.is_empty(),
        "balance_by_weight: prefix-sum array must be non-empty"
    );
    let n = prefix.len() - 1;
    if n == 0 {
        return Vec::new();
    }
    let chunks = chunks.max(1).min(n);
    let total = prefix[n] - prefix[0];
    if total == 0 {
        return even_ranges(n, chunks);
    }
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        if start >= n {
            break;
        }
        // Target cumulative weight at the end of chunk i.
        let target = prefix[0] + ((i as u128 + 1) * total as u128 / chunks as u128) as usize;
        // Find an end > start with prefix[end] >= target (binary search).
        let mut end = match prefix.binary_search(&target) {
            Ok(k) => k,
            Err(k) => k,
        };
        // A run of zero-weight items (empty rows) shows up as duplicate prefix values;
        // `binary_search` may land anywhere inside the run.  Bias the cut to the *end*
        // of the run: the trailing empties join this chunk (costing it nothing) instead
        // of starving the next chunks into weight-0 slivers and letting the last chunk
        // absorb the whole remainder.
        while end < n && prefix[end + 1] == prefix[end] {
            end += 1;
        }
        end = end.clamp(start + 1, n);
        if i + 1 == chunks {
            end = n;
        }
        out.push(start..end);
        start = end;
    }
    out
}

/// Runs `f` once per range in `bounds`, each invocation receiving the chunk index, the
/// range itself, and the disjoint mutable sub-slice `out[range]`.  Chunks run on scoped
/// threads (the last chunk runs on the calling thread to avoid one spawn).
///
/// The ranges must be contiguous, in increasing order, and collectively cover
/// `0..out.len()`; this is what [`even_ranges`] and [`balance_by_weight`] produce when
/// the weight array describes `out`.
///
/// # Panics
/// Panics if the ranges do not tile `out`.
pub fn scoped_chunks<T, F>(out: &mut [T], bounds: &[Range<usize>], f: F)
where
    T: Send,
    F: Fn(usize, Range<usize>, &mut [T]) + Sync,
{
    if bounds.is_empty() {
        assert!(
            out.is_empty(),
            "scoped_chunks: no ranges but non-empty output"
        );
        return;
    }
    assert_eq!(bounds[0].start, 0, "scoped_chunks: ranges must start at 0");
    assert_eq!(
        bounds.last().expect("bounds non-empty").end,
        out.len(),
        "scoped_chunks: ranges must cover the output"
    );
    for w in bounds.windows(2) {
        assert_eq!(
            w[0].end, w[1].start,
            "scoped_chunks: ranges must be contiguous"
        );
    }

    // Split `out` into disjoint mutable slices matching `bounds`.
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(bounds.len());
    let mut rest = out;
    let mut offset = 0;
    for r in bounds {
        let (head, tail) = rest.split_at_mut(r.end - offset);
        slices.push(head);
        rest = tail;
        offset = r.end;
    }

    std::thread::scope(|scope| {
        let f = &f;
        let mut iter = bounds.iter().cloned().zip(slices).enumerate();
        // Keep the last chunk for the current thread.
        let last = iter.next_back();
        for (idx, (range, slice)) in iter {
            scope.spawn(move || f(idx, range, slice));
        }
        if let Some((idx, (range, slice))) = last {
            f(idx, range, slice);
        }
    });
}

/// Convenience: a parallel map from chunk ranges to per-chunk results, preserving order.
///
/// `f` receives each range of `0..n` (as produced by [`even_ranges`]) and returns a value
/// for that chunk; the values are collected in chunk order.  Useful for reductions such
/// as per-chunk partial sums or per-chunk statistics.
pub fn par_map_ranges<R, F>(n: usize, chunks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = even_ranges(n, chunks);
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(ranges.len(), || None);
    scoped_chunks(
        &mut results,
        &even_ranges(ranges.len(), ranges.len()),
        |idx, _r, out| {
            out[0] = Some(f(ranges[idx].clone()));
        },
    );
    results
        .into_iter()
        .map(|r| r.expect("all chunks produce a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_cover_and_balance() {
        let r = even_ranges(10, 3);
        assert_eq!(r, vec![0..4, 4..7, 7..10]);
        assert_eq!(even_ranges(0, 4), vec![]);
        assert_eq!(even_ranges(2, 8), vec![0..1, 1..2]);
    }

    #[test]
    fn balance_by_weight_splits_by_nnz() {
        // Three rows with weights 10, 1, 1: two chunks should isolate the heavy row.
        let prefix = [0usize, 10, 11, 12];
        let r = balance_by_weight(&prefix, 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], 0..1);
        assert_eq!(r[1], 1..3);
    }

    #[test]
    fn balance_by_weight_handles_uniform_and_zero_weights() {
        let prefix: Vec<usize> = (0..=8).map(|i| i * 3).collect();
        let r = balance_by_weight(&prefix, 4);
        assert_eq!(r.iter().map(|x| x.len()).sum::<usize>(), 8);
        assert_eq!(r.len(), 4);

        let zeros = vec![0usize; 9];
        let r = balance_by_weight(&zeros, 4);
        assert_eq!(r.iter().map(|x| x.len()).sum::<usize>(), 8);
    }

    #[test]
    fn scoped_chunks_writes_disjoint_slices() {
        let mut out = vec![0usize; 100];
        let bounds = even_ranges(100, 7);
        scoped_chunks(&mut out, &bounds, |idx, range, slice| {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = idx * 1000 + range.start + k;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v % 1000, i);
        }
    }

    #[test]
    fn par_map_ranges_collects_in_order() {
        let sums = par_map_ranges(100, 4, |r| r.clone().sum::<usize>());
        assert_eq!(sums.iter().sum::<usize>(), (0..100).sum::<usize>());
        assert_eq!(sums.len(), 4);
    }

    #[test]
    #[should_panic(expected = "cover the output")]
    fn scoped_chunks_rejects_incomplete_tiling() {
        let mut out = vec![0; 10];
        scoped_chunks(&mut out, std::slice::from_ref(&(0..5)), |_, _, _| {});
    }

    #[test]
    fn balance_by_weight_biases_cuts_past_empty_row_runs() {
        // Row weights [10, 0, 0, 0, 10]: the run of empties straddles the 2-chunk
        // midpoint.  Cutting at the first duplicate used to produce a weight-0 middle
        // chunk and dump both heavy rows on the edges; biasing to the end of the run
        // yields two weight-10 chunks.
        let prefix = [0usize, 10, 10, 10, 10, 20];
        let r = balance_by_weight(&prefix, 4);
        let weights: Vec<usize> = r.iter().map(|c| prefix[c.end] - prefix[c.start]).collect();
        assert!(
            weights.iter().all(|&w| w > 0),
            "no chunk may be starved to weight 0: {weights:?}"
        );
        assert_eq!(weights.iter().sum::<usize>(), 20);
    }

    mod proptests {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            // Adversarial prefixes: unit-weight rows interleaved with arbitrary runs
            // of empty rows.  With the cut biased past duplicate runs, chunk weights
            // may differ by at most one unit, so max/min ≤ 2 whenever every chunk can
            // get at least one unit of weight.
            #[test]
            fn chunk_weights_stay_balanced_for_empty_row_runs(
                (flags, chunks) in (
                    proptest::collection::vec(proptest::bool::ANY, 2..200),
                    2usize..8,
                ).prop_filter("need at least `chunks` nonzero rows", |(flags, chunks)| {
                    flags.iter().filter(|&&f| f).count() >= *chunks
                })
            ) {
                let mut prefix = vec![0usize];
                for &f in &flags {
                    prefix.push(prefix.last().unwrap() + usize::from(f));
                }
                let ranges = balance_by_weight(&prefix, chunks);

                // The ranges tile 0..n in order.
                prop_assert_eq!(ranges[0].start, 0);
                prop_assert_eq!(ranges.last().unwrap().end, flags.len());
                for w in ranges.windows(2) {
                    prop_assert_eq!(w[0].end, w[1].start);
                }

                let weights: Vec<usize> = ranges
                    .iter()
                    .map(|r| prefix[r.end] - prefix[r.start])
                    .collect();
                let max = *weights.iter().max().unwrap();
                let min = *weights.iter().min().unwrap();
                prop_assert!(min > 0, "starved chunk in {:?}", weights);
                prop_assert!(
                    max <= 2 * min,
                    "imbalance {}/{} from weights {:?} (prefix {:?}, {} chunks)",
                    max, min, weights, prefix, chunks
                );
            }
        }
    }
}
