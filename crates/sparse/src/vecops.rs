//! Dense vector kernels used by the iterative solvers.
//!
//! The Krylov solvers in `refloat-solvers` (CG, BiCGSTAB — Code 1 of the paper) spend
//! their non-SpMV time in level-1 BLAS style operations.  These are deliberately written
//! over plain slices so they impose no container choice on callers, avoid allocation, and
//! let the compiler auto-vectorize the loops.

/// Dot product `xᵀ y`.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        acc += a * b;
    }
    acc
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `‖x‖_∞` (0 for an empty slice).
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// `y ← a·x + y` (the classic axpy).
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// `y ← x + b·y` (the "xpby" update used by CG's direction update `p ← r + β p`).
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi = xi + b * *yi;
    }
}

/// `x ← a·x`.
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// `z ← x - y`, element-wise, writing into `z`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sub_into(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub_into: length mismatch (x vs y)");
    assert_eq!(x.len(), z.len(), "sub_into: length mismatch (x vs z)");
    for ((zi, xi), yi) in z.iter_mut().zip(x.iter()).zip(y.iter()) {
        *zi = xi - yi;
    }
}

/// Copies `x` into `y`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// Sets every element of `x` to zero.
pub fn zero(x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi = 0.0;
    }
}

/// Relative difference `‖x − y‖₂ / max(‖y‖₂, ε)`, a convenience for tests and
/// experiment harnesses comparing a reduced-precision result against a reference.
pub fn rel_err(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "rel_err: length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        num += (a - b) * (a - b);
        den += b * b;
    }
    num.sqrt() / den.sqrt().max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_matches_manual_sum() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, -5.0, 6.0];
        assert_eq!(dot(&x, &y), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn norm2_of_three_four_is_five() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norm_inf_picks_largest_magnitude() {
        assert_eq!(norm_inf(&[1.0, -7.5, 3.0]), 7.5);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn xpby_matches_cg_direction_update() {
        // p <- r + beta * p
        let r = [1.0, 1.0];
        let mut p = [3.0, -2.0];
        xpby(&r, 0.5, &mut p);
        assert_eq!(p, [2.5, 0.0]);
    }

    #[test]
    fn scale_and_zero() {
        let mut x = [1.0, -2.0, 4.0];
        scale(0.5, &mut x);
        assert_eq!(x, [0.5, -1.0, 2.0]);
        zero(&mut x);
        assert_eq!(x, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn sub_into_computes_difference() {
        let x = [5.0, 7.0];
        let y = [2.0, 10.0];
        let mut z = [0.0; 2];
        sub_into(&x, &y, &mut z);
        assert_eq!(z, [3.0, -3.0]);
    }

    #[test]
    fn rel_err_is_zero_for_identical_vectors_and_scales() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(rel_err(&x, &x), 0.0);
        let y = [1.1, 2.0, 3.0];
        let e = rel_err(&y, &x);
        assert!(e > 0.0 && e < 0.1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
