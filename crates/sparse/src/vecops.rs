//! Dense vector kernels used by the iterative solvers.
//!
//! The Krylov solvers in `refloat-solvers` (CG, BiCGSTAB — Code 1 of the paper) spend
//! their non-SpMV time in level-1 BLAS style operations.  These are deliberately written
//! over plain slices so they impose no container choice on callers, avoid allocation, and
//! let the compiler auto-vectorize the loops.

/// Leaf size of the pairwise reductions: small enough that the worst-case error of the
/// naive base-case loop stays negligible, large enough that the recursion overhead
/// vanishes and the leaf loop still auto-vectorizes.
const PAIRWISE_LEAF: usize = 64;

/// Pairwise (cascade) reduction of `Σ xᵢ·yᵢ` over equal-length slices.
///
/// Naive left-to-right accumulation has an error bound that grows like `O(n·ε)`; the
/// pairwise tree brings that down to `O(log n · ε)`, which keeps residual norms stable
/// at `n ≥ 10⁶` and — because the split points depend only on the slice length — makes
/// the result independent of how callers shard the surrounding computation.
fn pairwise_dot(x: &[f64], y: &[f64]) -> f64 {
    if x.len() <= PAIRWISE_LEAF {
        let mut acc = 0.0;
        for (a, b) in x.iter().zip(y.iter()) {
            acc += a * b;
        }
        return acc;
    }
    let mid = x.len() / 2;
    let (xl, xr) = x.split_at(mid);
    let (yl, yr) = y.split_at(mid);
    pairwise_dot(xl, yl) + pairwise_dot(xr, yr)
}

/// Dot product `xᵀ y`, accumulated pairwise (error `O(log n · ε)` instead of the
/// naive loop's `O(n · ε)`); the summation order is a pure function of the length, so
/// results are bitwise reproducible and independent of caller-side sharding.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    pairwise_dot(x, y)
}

/// Dot product `xᵀ y` with Kahan (compensated) accumulation — the fp64 reference the
/// accuracy tests compare [`dot`] against, and the right tool when a caller needs the
/// tightest error bound regardless of cost.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn dot_kahan(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot_kahan: length mismatch");
    let mut sum = 0.0;
    let mut comp = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let term = a * b - comp;
        let next = sum + term;
        comp = (next - sum) - term;
        sum = next;
    }
    sum
}

/// Pairwise (cascade) reduction of `Σ xᵢ` — same tree shape as [`pairwise_dot`].
fn pairwise_sum(x: &[f64]) -> f64 {
    if x.len() <= PAIRWISE_LEAF {
        let mut acc = 0.0;
        for v in x {
            acc += v;
        }
        return acc;
    }
    let mid = x.len() / 2;
    let (l, r) = x.split_at(mid);
    pairwise_sum(l) + pairwise_sum(r)
}

/// Sum `Σ xᵢ`, accumulated pairwise (error `O(log n · ε)` instead of the naive
/// loop's `O(n · ε)`); the summation order is a pure function of the length, so the
/// result is bitwise reproducible.  This is the sanctioned alternative to
/// `.sum::<f64>()` that the naive-float-accumulation lint points at.
pub fn sum(x: &[f64]) -> f64 {
    pairwise_sum(x)
}

/// Euclidean norm `‖x‖₂` (pairwise accumulation, see [`dot`]).
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `‖x‖_∞` (0 for an empty slice).
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// `y ← a·x + y` (the classic axpy).
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// `y ← x + b·y` (the "xpby" update used by CG's direction update `p ← r + β p`).
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi = xi + b * *yi;
    }
}

/// `x ← a·x`.
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// `z ← x - y`, element-wise, writing into `z`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sub_into(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub_into: length mismatch (x vs y)");
    assert_eq!(x.len(), z.len(), "sub_into: length mismatch (x vs z)");
    for ((zi, xi), yi) in z.iter_mut().zip(x.iter()).zip(y.iter()) {
        *zi = xi - yi;
    }
}

/// Copies `x` into `y`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// Sets every element of `x` to zero.
pub fn zero(x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi = 0.0;
    }
}

/// Relative difference `‖x − y‖₂ / max(‖y‖₂, ε)`, a convenience for tests and
/// experiment harnesses comparing a reduced-precision result against a reference.
pub fn rel_err(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "rel_err: length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        num += (a - b) * (a - b);
        den += b * b;
    }
    num.sqrt() / den.sqrt().max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_matches_manual_sum() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, -5.0, 6.0];
        assert_eq!(dot(&x, &y), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn norm2_of_three_four_is_five() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norm_inf_picks_largest_magnitude() {
        assert_eq!(norm_inf(&[1.0, -7.5, 3.0]), 7.5);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn xpby_matches_cg_direction_update() {
        // p <- r + beta * p
        let r = [1.0, 1.0];
        let mut p = [3.0, -2.0];
        xpby(&r, 0.5, &mut p);
        assert_eq!(p, [2.5, 0.0]);
    }

    #[test]
    fn scale_and_zero() {
        let mut x = [1.0, -2.0, 4.0];
        scale(0.5, &mut x);
        assert_eq!(x, [0.5, -1.0, 2.0]);
        zero(&mut x);
        assert_eq!(x, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn sub_into_computes_difference() {
        let x = [5.0, 7.0];
        let y = [2.0, 10.0];
        let mut z = [0.0; 2];
        sub_into(&x, &y, &mut z);
        assert_eq!(z, [3.0, -3.0]);
    }

    #[test]
    fn rel_err_is_zero_for_identical_vectors_and_scales() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(rel_err(&x, &x), 0.0);
        let y = [1.1, 2.0, 3.0];
        let e = rel_err(&y, &x);
        assert!(e > 0.0 && e < 0.1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    /// Naive left-to-right accumulation, kept only as the error yardstick for the
    /// pairwise regression below.
    fn naive_dot(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y.iter()).fold(0.0, |acc, (a, b)| acc + a * b)
    }

    #[test]
    fn pairwise_dot_tracks_kahan_reference_at_a_million_elements() {
        // A deterministic, poorly-conditioned sum: magnitudes spread over ~6 decades
        // with sign flips, the regime where naive accumulation visibly drifts.
        let n = 1_000_000;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                sign * (1.0 + (i % 977) as f64 * 1e-3) * 10f64.powi((i % 7) - 3)
            })
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 1.0 + ((i * 31) % 613) as f64 * 1e-4)
            .collect();

        let reference = dot_kahan(&x, &y);
        let pairwise = dot(&x, &y);
        let naive = naive_dot(&x, &y);

        // Scale of the summands (not of the cancelled result) bounds the rounding.
        let magnitude: f64 = x
            .iter()
            .zip(y.iter())
            .map(|(a, b)| (a * b).abs())
            .fold(0.0, |acc, t| acc + t);
        let pairwise_err = (pairwise - reference).abs();
        let naive_err = (naive - reference).abs();
        // O(log n · ε) for the pairwise tree: comfortably under 64·ε·Σ|xᵢyᵢ|.
        assert!(
            pairwise_err <= 64.0 * f64::EPSILON * magnitude,
            "pairwise err {pairwise_err:.3e} vs bound {:.3e}",
            64.0 * f64::EPSILON * magnitude
        );
        // And never worse than the naive loop it replaced.
        assert!(
            pairwise_err <= naive_err.max(f64::EPSILON * magnitude),
            "pairwise err {pairwise_err:.3e} should not exceed naive err {naive_err:.3e}"
        );
    }

    #[test]
    fn norm2_is_stable_at_large_n() {
        // 10⁶ copies of the same value: ‖x‖₂ = |v|·√n exactly in real arithmetic.
        let n = 1_000_000usize;
        let v = 0.1_f64;
        let x = vec![v; n];
        let expected = v * (n as f64).sqrt();
        let got = norm2(&x);
        assert!(
            ((got - expected) / expected).abs() < 1e-13,
            "norm2 drifted: {got} vs {expected}"
        );
    }

    #[test]
    fn dot_result_is_independent_of_leaf_alignment() {
        // The pairwise split points depend only on the total length, so computing the
        // same dot twice (and over an identical copy) must be bitwise identical.
        let x: Vec<f64> = (0..10_000)
            .map(|i| ((i * 37) % 101) as f64 - 50.0)
            .collect();
        let y: Vec<f64> = (0..10_000).map(|i| ((i * 53) % 89) as f64 * 0.25).collect();
        let a = dot(&x, &y);
        let b = dot(&x.clone(), &y.clone());
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
