//! Square-block partitioning and the block-major layout of Fig. 7.
//!
//! ReRAM crossbars compute MVM at the granularity of a `2^b × 2^b` matrix block
//! (`b = 7`, i.e. 128×128, for the crossbars in Table IV of the paper).  A
//! [`BlockedMatrix`] stores only the *non-empty* blocks of a sparse matrix; each block
//! records its block coordinates `(i, j)` (the leading index bits of Fig. 5a) and its
//! entries with *local* `(ii, jj)` coordinates inside the block (the trailing `b` bits).
//!
//! Blocks are kept in block-row-major order, which is exactly the *block-major layout*
//! the paper introduces in §V.C / Fig. 7 so that all non-zeros of a block — and all
//! blocks that are scheduled together — are read sequentially from memory.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::parallel;
use crate::Result;

/// One non-empty `2^b × 2^b` block of a sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block-row index `i` (row `r` of the full matrix lives in block-row `r >> b`).
    pub block_row: usize,
    /// Block-column index `j`.
    pub block_col: usize,
    /// Local row indices `ii` (`< 2^b`), one per entry.
    pub rows: Vec<u16>,
    /// Local column indices `jj` (`< 2^b`), one per entry.
    pub cols: Vec<u16>,
    /// Entry values, one per entry, in the same order as `rows`/`cols`.
    pub vals: Vec<f64>,
}

impl Block {
    /// Number of non-zero entries stored in the block.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Iterates over `(ii, jj, value)` entries of the block.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u16, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Materializes the block as a dense row-major `2^b × 2^b` matrix (zero filled).
    ///
    /// Used by the crossbar simulator, which maps a whole block onto a crossbar.
    pub fn to_dense(&self, block_size: usize) -> Vec<f64> {
        let mut dense = vec![0.0; block_size * block_size];
        for (r, c, v) in self.iter() {
            dense[r as usize * block_size + c as usize] = v;
        }
        dense
    }

    /// Largest absolute value in the block (0.0 for an empty block).
    pub fn max_abs(&self) -> f64 {
        self.vals.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }
}

/// A sparse matrix partitioned into square `2^b × 2^b` blocks, stored block-row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedMatrix {
    nrows: usize,
    ncols: usize,
    /// log2 of the block edge length (the paper's `b`).
    b: u32,
    /// Non-empty blocks in block-row-major order (sorted by `(block_row, block_col)`).
    blocks: Vec<Block>,
    /// Start offsets into `blocks` for each block-row (`num_block_rows + 1` entries).
    block_row_ptr: Vec<usize>,
}

impl BlockedMatrix {
    /// Partitions a CSR matrix into `2^b × 2^b` blocks.
    ///
    /// Returns an error if `b == 0` would make blocks degenerate (`b` must be ≥ 1) or if
    /// `b` is large enough that local indices no longer fit in `u16` (`b ≤ 15`).
    pub fn from_csr(a: &CsrMatrix, b: u32) -> Result<Self> {
        if b == 0 || b > 15 {
            return Err(SparseError::InvalidParameter(format!(
                "block size exponent b must be in 1..=15, got {b}"
            )));
        }
        let bs = 1usize << b;
        let nrows = a.nrows();
        let ncols = a.ncols();
        let num_block_rows = nrows.div_ceil(bs);
        let num_block_cols = ncols.div_ceil(bs);

        let mut blocks: Vec<Block> = Vec::new();
        let mut block_row_ptr = Vec::with_capacity(num_block_rows + 1);
        block_row_ptr.push(0);

        // Scratch: for the current block-row, map block-col -> position in `current`.
        let mut col_to_slot: Vec<usize> = vec![usize::MAX; num_block_cols];
        for brow in 0..num_block_rows {
            let mut current: Vec<Block> = Vec::new();
            let row_lo = brow * bs;
            let row_hi = (row_lo + bs).min(nrows);
            for r in row_lo..row_hi {
                let (cols, vals) = a.row(r);
                for (&c, &v) in cols.iter().zip(vals.iter()) {
                    let bcol = c >> b;
                    let slot = col_to_slot[bcol];
                    let blk = if slot == usize::MAX {
                        col_to_slot[bcol] = current.len();
                        current.push(Block {
                            block_row: brow,
                            block_col: bcol,
                            rows: Vec::new(),
                            cols: Vec::new(),
                            vals: Vec::new(),
                        });
                        current.last_mut().expect("just pushed")
                    } else {
                        &mut current[slot]
                    };
                    blk.rows.push((r - row_lo) as u16);
                    blk.cols.push((c & (bs - 1)) as u16);
                    blk.vals.push(v);
                }
            }
            // Reset scratch and emit the block-row sorted by block column.
            for blk in &current {
                col_to_slot[blk.block_col] = usize::MAX;
            }
            current.sort_unstable_by_key(|blk| blk.block_col);
            blocks.extend(current);
            block_row_ptr.push(blocks.len());
        }

        Ok(BlockedMatrix {
            nrows,
            ncols,
            b,
            blocks,
            block_row_ptr,
        })
    }

    /// Partitions a COO matrix (duplicates are summed via CSR first).
    pub fn from_coo(a: &CooMatrix, b: u32) -> Result<Self> {
        Self::from_csr(&a.to_csr(), b)
    }

    /// Number of rows of the underlying matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the underlying matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The block-size exponent `b` (blocks are `2^b × 2^b`).
    pub fn b(&self) -> u32 {
        self.b
    }

    /// Block edge length `2^b`.
    pub fn block_size(&self) -> usize {
        1 << self.b
    }

    /// Number of block rows (`⌈nrows / 2^b⌉`).
    pub fn num_block_rows(&self) -> usize {
        self.nrows.div_ceil(self.block_size())
    }

    /// Number of block columns (`⌈ncols / 2^b⌉`).
    pub fn num_block_cols(&self) -> usize {
        self.ncols.div_ceil(self.block_size())
    }

    /// Number of *non-empty* blocks.
    ///
    /// This is the number of crossbar clusters one full SpMV requires on the
    /// accelerator (§VI.B of the paper), so it drives the timing model.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(Block::nnz).sum()
    }

    /// All non-empty blocks in block-row-major order (the block-major layout).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The non-empty blocks of block-row `brow`.
    pub fn block_row(&self, brow: usize) -> &[Block] {
        let (lo, hi) = (self.block_row_ptr[brow], self.block_row_ptr[brow + 1]);
        &self.blocks[lo..hi]
    }

    /// Average number of non-zeros per non-empty block.
    pub fn avg_nnz_per_block(&self) -> f64 {
        if self.blocks.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.blocks.len() as f64
        }
    }

    /// Serial blocked SpMV: `y ← A x`, accumulating block partial products exactly as
    /// Eq. 8 of the paper (`y_c(p) = Σ_i A_c(p, i) x_c(i)` over non-empty blocks).
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "blocked spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "blocked spmv: y length mismatch");
        for yi in y.iter_mut() {
            *yi = 0.0;
        }
        let bs = self.block_size();
        for blk in &self.blocks {
            let row0 = blk.block_row * bs;
            let col0 = blk.block_col * bs;
            for (ii, jj, v) in blk.iter() {
                y[row0 + ii as usize] += v * x[col0 + jj as usize];
            }
        }
    }

    /// Parallel blocked SpMV over block-rows (block-rows write disjoint output ranges).
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn par_spmv_into(&self, x: &[f64], y: &mut [f64], num_threads: usize) {
        assert_eq!(x.len(), self.ncols, "blocked par_spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "blocked par_spmv: y length mismatch");
        let threads = num_threads.max(1);
        if threads == 1 || self.num_block_rows() < 2 {
            self.spmv_into(x, y);
            return;
        }
        let bs = self.block_size();
        // Weight block-rows by their nonzero count to balance the chunks.
        let mut prefix = vec![0usize; self.num_block_rows() + 1];
        for brow in 0..self.num_block_rows() {
            let w: usize = self.block_row(brow).iter().map(Block::nnz).sum();
            prefix[brow + 1] = prefix[brow] + w;
        }
        let brow_chunks = parallel::balance_by_weight(&prefix, threads);
        // Convert block-row chunks into row ranges over y.
        let row_bounds: Vec<std::ops::Range<usize>> = brow_chunks
            .iter()
            .map(|r| (r.start * bs)..((r.end * bs).min(self.nrows)))
            .collect();
        parallel::scoped_chunks(y, &row_bounds, |chunk_idx, rows, out| {
            for yi in out.iter_mut() {
                *yi = 0.0;
            }
            let brows = brow_chunks[chunk_idx].clone();
            for brow in brows {
                for blk in self.block_row(brow) {
                    let row0 = blk.block_row * bs - rows.start;
                    let col0 = blk.block_col * bs;
                    for (ii, jj, v) in blk.iter() {
                        out[row0 + ii as usize] += v * x[col0 + jj as usize];
                    }
                }
            }
        });
    }

    /// Reconstructs the matrix as CSR (for round-trip testing and interoperability).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        let bs = self.block_size();
        for blk in &self.blocks {
            let row0 = blk.block_row * bs;
            let col0 = blk.block_col * bs;
            for (ii, jj, v) in blk.iter() {
                coo.push(row0 + ii as usize, col0 + jj as usize, v);
            }
        }
        coo.to_csr()
    }

    /// The streaming order of blocks under the block-major layout with parallelism `P`
    /// (Fig. 7): within each block-row, blocks are issued in groups of `P`; groups of the
    /// same block-row are completed before moving to the next block-row.
    ///
    /// Returns indices into [`blocks`](Self::blocks), grouped into scheduling rounds.
    pub fn stream_schedule(&self, p: usize) -> Vec<Vec<usize>> {
        let p = p.max(1);
        let mut rounds = Vec::new();
        for brow in 0..self.num_block_rows() {
            let (lo, hi) = (self.block_row_ptr[brow], self.block_row_ptr[brow + 1]);
            let mut start = lo;
            while start < hi {
                let end = (start + p).min(hi);
                rounds.push((start..end).collect());
                start = end;
            }
        }
        rounds
    }

    /// Histogram of non-zeros per non-empty block; index `k` counts blocks with `k`
    /// entries, capped at `max_bin` (last bin is "≥ max_bin").
    pub fn nnz_per_block_histogram(&self, max_bin: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max_bin + 1];
        for blk in &self.blocks {
            let k = blk.nnz().min(max_bin);
            hist[k] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banded(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0 + i as f64 * 1e-3);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
            if i + 7 < n {
                coo.push(i, i + 7, 0.25);
                coo.push(i + 7, i, 0.25);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn from_csr_partitions_all_nonzeros() {
        let a = banded(100);
        let blocked = BlockedMatrix::from_csr(&a, 4).unwrap();
        assert_eq!(blocked.block_size(), 16);
        assert_eq!(blocked.nnz(), a.nnz());
        assert_eq!(blocked.num_block_rows(), 7);
        assert_eq!(blocked.num_block_cols(), 7);
        assert!(blocked.num_blocks() >= blocked.num_block_rows());
    }

    #[test]
    fn invalid_block_exponent_is_rejected() {
        let a = banded(10);
        assert!(BlockedMatrix::from_csr(&a, 0).is_err());
        assert!(BlockedMatrix::from_csr(&a, 16).is_err());
    }

    #[test]
    fn blocks_are_sorted_block_row_major() {
        let a = banded(200);
        let blocked = BlockedMatrix::from_csr(&a, 5).unwrap();
        let keys: Vec<(usize, usize)> = blocked
            .blocks()
            .iter()
            .map(|b| (b.block_row, b.block_col))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn local_indices_fit_in_block() {
        let a = banded(100);
        let blocked = BlockedMatrix::from_csr(&a, 4).unwrap();
        for blk in blocked.blocks() {
            for (ii, jj, _) in blk.iter() {
                assert!((ii as usize) < blocked.block_size());
                assert!((jj as usize) < blocked.block_size());
            }
        }
    }

    #[test]
    fn spmv_matches_csr() {
        let a = banded(150);
        let blocked = BlockedMatrix::from_csr(&a, 4).unwrap();
        let x: Vec<f64> = (0..150).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut y_csr = vec![0.0; 150];
        let mut y_blk = vec![0.0; 150];
        a.spmv_into(&x, &mut y_csr);
        blocked.spmv_into(&x, &mut y_blk);
        for (u, v) in y_csr.iter().zip(y_blk.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn par_spmv_matches_serial() {
        let a = banded(777);
        let blocked = BlockedMatrix::from_csr(&a, 6).unwrap();
        let x: Vec<f64> = (0..777).map(|i| (i as f64 * 0.01).cos()).collect();
        let mut y1 = vec![0.0; 777];
        let mut y2 = vec![0.0; 777];
        blocked.spmv_into(&x, &mut y1);
        blocked.par_spmv_into(&x, &mut y2, 5);
        for (u, v) in y1.iter().zip(y2.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn csr_roundtrip_preserves_matrix() {
        let a = banded(120);
        let blocked = BlockedMatrix::from_csr(&a, 4).unwrap();
        let back = blocked.to_csr();
        assert_eq!(a, back);
    }

    #[test]
    fn block_to_dense_places_entries() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 1, 2.0);
        coo.push(3, 2, -1.0);
        let blocked = BlockedMatrix::from_coo(&coo, 2).unwrap();
        assert_eq!(blocked.num_blocks(), 1);
        let dense = blocked.blocks()[0].to_dense(4);
        assert_eq!(dense[1], 2.0);
        assert_eq!(dense[3 * 4 + 2], -1.0);
        assert_eq!(dense.iter().filter(|v| **v != 0.0).count(), 2);
    }

    #[test]
    fn stream_schedule_groups_within_block_rows() {
        let a = banded(200);
        let blocked = BlockedMatrix::from_csr(&a, 4).unwrap();
        let rounds = blocked.stream_schedule(2);
        // Every round only touches a single block-row and at most 2 blocks.
        for round in &rounds {
            assert!(round.len() <= 2 && !round.is_empty());
            let brow = blocked.blocks()[round[0]].block_row;
            for &idx in round {
                assert_eq!(blocked.blocks()[idx].block_row, brow);
            }
        }
        // All blocks scheduled exactly once.
        let mut seen: Vec<usize> = rounds.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..blocked.num_blocks()).collect::<Vec<_>>());
    }

    #[test]
    fn histogram_counts_blocks() {
        let a = banded(64);
        let blocked = BlockedMatrix::from_csr(&a, 3).unwrap();
        let hist = blocked.nnz_per_block_histogram(64);
        assert_eq!(hist.iter().sum::<usize>(), blocked.num_blocks());
    }

    #[test]
    fn non_square_matrix_is_supported() {
        let mut coo = CooMatrix::new(10, 37);
        coo.push(0, 36, 1.0);
        coo.push(9, 0, 2.0);
        coo.push(5, 20, 3.0);
        let blocked = BlockedMatrix::from_coo(&coo, 3).unwrap();
        assert_eq!(blocked.num_block_rows(), 2);
        assert_eq!(blocked.num_block_cols(), 5);
        assert_eq!(blocked.nnz(), 3);
        let x = vec![1.0; 37];
        let mut y = vec![0.0; 10];
        blocked.spmv_into(&x, &mut y);
        assert_eq!(y[0], 1.0);
        assert_eq!(y[9], 2.0);
        assert_eq!(y[5], 3.0);
    }
}
