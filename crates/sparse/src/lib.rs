//! Sparse-matrix substrate for the ReFloat reproduction.
//!
//! The ReFloat accelerator (Song et al., SC'23) operates on large sparse matrices that
//! are partitioned into `2^b × 2^b` blocks, one block per ReRAM crossbar cluster.  This
//! crate provides everything the rest of the workspace needs to stand on:
//!
//! * [`CooMatrix`] — coordinate (triplet) storage, the natural construction and
//!   interchange format (also what Matrix Market files decode to),
//! * [`CsrMatrix`] — compressed sparse row storage with serial and parallel
//!   sparse-matrix/dense-vector products (SpMV), the reference FP64 operator,
//! * [`BlockedMatrix`] — the matrix partitioned into square `2^b × 2^b` blocks stored in
//!   the *block-major* layout of Fig. 7 of the paper, which is the granularity at which
//!   ReFloat quantizes values and at which the accelerator maps work onto crossbars,
//! * [`mm`] — a Matrix Market (`.mtx`) reader/writer so the real SuiteSparse inputs can
//!   be used when available,
//! * [`vecops`] — the dense vector kernels (dot, axpy, norms, …) used by the Krylov
//!   solvers,
//! * [`parallel`] — a small scoped-thread parallel-for used by the data-parallel kernels,
//! * [`shard`] — block-row-aligned, nnz-balanced sharding of a matrix across multiple
//!   accelerator chips (each shard re-blocks identically to the unsharded matrix, which
//!   is what keeps sharded solves bitwise deterministic).
//!
//! All numeric storage is `f64`; reduced-precision behaviour is layered on top by the
//! `refloat-core` crate, never baked into the substrate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blocked;
pub mod coo;
pub mod csr;
pub mod error;
pub mod mm;
pub mod parallel;
pub mod shard;
pub mod stats;
pub mod vecops;

pub use blocked::{Block, BlockedMatrix};
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use shard::{block_row_shards, extract_row_range, ShardRange};
pub use stats::MatrixStats;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, SparseError>;
