//! Compressed sparse row (CSR) storage and SpMV kernels.
//!
//! CSR is the reference FP64 operator in this reproduction: the GPU and "Feinberg-fc"
//! baselines of the paper behave numerically like plain double-precision SpMV, which is
//! exactly what [`CsrMatrix::spmv_into`] computes.  A chunked parallel SpMV built on
//! scoped threads is provided for the larger Table V workloads.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::parallel;
use crate::Result;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    /// Row pointer array of length `nrows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, length `nnz`, sorted within each row.
    col_idx: Vec<usize>,
    /// Nonzero values, length `nnz`.
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays.
    ///
    /// `row_ptr` must have length `nrows + 1`, be non-decreasing, start at 0 and end at
    /// `col_idx.len()`; every column index must be `< ncols`.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1 {
            return Err(SparseError::LengthMismatch {
                what: "CSR row_ptr",
                expected: nrows + 1,
                actual: row_ptr.len(),
            });
        }
        if col_idx.len() != vals.len() {
            return Err(SparseError::LengthMismatch {
                what: "CSR col_idx vs values",
                expected: vals.len(),
                actual: col_idx.len(),
            });
        }
        if row_ptr.first().copied() != Some(0) || row_ptr.last().copied() != Some(vals.len()) {
            return Err(SparseError::InvalidParameter(
                "CSR row_ptr must start at 0 and end at nnz".into(),
            ));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::InvalidParameter(
                "CSR row_ptr must be non-decreasing".into(),
            ));
        }
        for &c in &col_idx {
            if c >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: 0,
                    col: c,
                    nrows,
                    ncols,
                });
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        })
    }

    /// Builds a CSR matrix from a COO matrix, summing duplicate entries.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let nnz_in = coo.nnz();

        // Counting sort by row.
        let mut counts = vec![0usize; nrows + 1];
        for &r in coo.row_indices() {
            counts[r + 1] += 1;
        }
        for i in 0..nrows {
            counts[i + 1] += counts[i];
        }
        let mut order_cols = vec![0usize; nnz_in];
        let mut order_vals = vec![0.0f64; nnz_in];
        {
            let mut cursor = counts.clone();
            for ((&r, &c), &v) in coo
                .row_indices()
                .iter()
                .zip(coo.col_indices().iter())
                .zip(coo.values().iter())
            {
                let k = cursor[r];
                order_cols[k] = c;
                order_vals[k] = v;
                cursor[r] += 1;
            }
        }

        // Sort within each row by column and merge duplicates.
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::with_capacity(nnz_in);
        let mut vals = Vec::with_capacity(nnz_in);
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..nrows {
            let (lo, hi) = (counts[r], counts[r + 1]);
            scratch.clear();
            scratch.extend(
                order_cols[lo..hi]
                    .iter()
                    .copied()
                    .zip(order_vals[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                if let Some(&last_c) = col_idx.last() {
                    if col_idx.len() > *row_ptr.last().expect("row_ptr nonempty") && last_c == c {
                        *vals.last_mut().expect("vals matches col_idx") += v;
                        continue;
                    }
                }
                col_idx.push(c);
                vals.push(v);
            }
            row_ptr.push(col_idx.len());
        }

        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row pointer array (`nrows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable value array (structure is fixed, values may be edited e.g. for scaling).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Returns the `(col_idx, values)` slices of row `r`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Iterates over all `(row, col, value)` entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals.iter()).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Returns the value at `(row, col)`, or 0.0 if not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&col) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Extracts the main diagonal (missing diagonal entries are returned as 0.0).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Serial SpMV: `y ← A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "CSR spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "CSR spmv: y length mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.vals[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
    }

    /// Allocating convenience wrapper around [`spmv_into`](Self::spmv_into).
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// The true relative residual `‖b − A·x‖₂ / ‖b‖₂` of a candidate solution against
    /// this (exact fp64) matrix — the honest accuracy yardstick for solves performed
    /// on quantized operators, whose internal residuals are measured against the
    /// quantized matrix and can be arbitrarily optimistic.  Returns 0.0 for `b = 0`.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `b.len() != nrows`.
    pub fn relative_residual(&self, b: &[f64], x: &[f64]) -> f64 {
        assert_eq!(b.len(), self.nrows, "relative_residual: b length mismatch");
        let ax = self.spmv(x);
        let mut r = vec![0.0; b.len()];
        crate::vecops::sub_into(b, &ax, &mut r);
        let b_norm = crate::vecops::norm2(b);
        if b_norm > 0.0 {
            crate::vecops::norm2(&r) / b_norm
        } else {
            0.0
        }
    }

    /// Parallel SpMV over row chunks using scoped threads.
    ///
    /// Rows are partitioned into contiguous chunks of roughly equal nonzero count, one
    /// per worker, so no synchronization is needed on the output vector.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn par_spmv_into(&self, x: &[f64], y: &mut [f64], num_threads: usize) {
        assert_eq!(x.len(), self.ncols, "CSR par_spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "CSR par_spmv: y length mismatch");
        let threads = num_threads.max(1);
        if threads == 1 || self.nrows < 2 * threads {
            self.spmv_into(x, y);
            return;
        }
        let bounds = parallel::balance_by_weight(&self.row_ptr, threads);
        parallel::scoped_chunks(y, &bounds, |chunk_idx, rows, out| {
            let row0 = rows.start;
            for (local, r) in (rows.start..rows.end).enumerate() {
                let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.vals[k] * x[self.col_idx[k]];
                }
                out[local] = acc;
            }
            let _ = (chunk_idx, row0);
        });
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        let mut cursor = counts.clone();
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            for k in lo..hi {
                let c = self.col_idx[k];
                let dst = cursor[c];
                col_idx[dst] = r;
                vals[dst] = self.vals[k];
                cursor[c] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr: counts,
            col_idx,
            vals,
        }
    }

    /// Checks numerical symmetry within an absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            // Structurally different; fall back to element-wise comparison.
            return self
                .iter()
                .all(|(r, c, v)| (self.get(c, r) - v).abs() <= tol)
                && t.iter().all(|(r, c, v)| (self.get(r, c) - v).abs() <= tol);
        }
        self.vals
            .iter()
            .zip(t.vals.iter())
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Frobenius norm of the matrix (pairwise accumulation via [`crate::vecops::dot`],
    /// so the result is independent of how callers shard the value array).
    pub fn frobenius_norm(&self) -> f64 {
        crate::vecops::dot(&self.vals, &self.vals).sqrt()
    }

    /// Maximum absolute value of any stored entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.vals.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Minimum absolute value over the *nonzero* entries (`None` for an empty matrix).
    pub fn min_abs_nonzero(&self) -> Option<f64> {
        self.vals
            .iter()
            .filter(|v| **v != 0.0)
            .map(|v| v.abs())
            .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.min(v))))
    }

    /// Converts back to COO (useful for re-blocking or writing Matrix Market files).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v);
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_coo() -> CooMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut a = CooMatrix::new(3, 3);
        a.push(0, 0, 1.0);
        a.push(0, 2, 2.0);
        a.push(1, 1, 3.0);
        a.push(2, 0, 4.0);
        a.push(2, 2, 5.0);
        a
    }

    #[test]
    fn from_coo_builds_expected_structure() {
        let a = CsrMatrix::from_coo(&example_coo());
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.row_ptr(), &[0, 2, 3, 5]);
        assert_eq!(a.col_idx(), &[0, 2, 1, 0, 2]);
        assert_eq!(a.values(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.5);
        let a = CsrMatrix::from_coo(&coo);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 1), 3.5);
    }

    #[test]
    fn from_raw_validates_inputs() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 3, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 9], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn spmv_matches_coo_reference() {
        let coo = example_coo();
        let a = CsrMatrix::from_coo(&coo);
        let x = [1.0, -2.0, 0.5];
        let mut y_csr = [0.0; 3];
        let mut y_coo = [0.0; 3];
        a.spmv_into(&x, &mut y_csr);
        coo.spmv_into(&x, &mut y_coo);
        assert_eq!(y_csr, y_coo);
    }

    #[test]
    fn par_spmv_matches_serial() {
        // Build a bigger banded matrix to exercise chunking.
        let n = 513;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0 + (i as f64) * 0.001);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        a.spmv_into(&x, &mut y1);
        a.par_spmv_into(&x, &mut y2, 4);
        for (a, b) in y1.iter().zip(y2.iter()) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn get_and_diagonal() {
        let a = CsrMatrix::from_coo(&example_coo());
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.diagonal(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn transpose_is_involutive() {
        let a = CsrMatrix::from_coo(&example_coo());
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        assert_eq!(a.transpose().get(0, 2), 4.0);
    }

    #[test]
    fn symmetry_detection() {
        let a = CsrMatrix::from_coo(&example_coo());
        assert!(!a.is_symmetric(1e-12));
        let mut s = CooMatrix::new(3, 3);
        s.push_sym(0, 1, -1.0);
        s.push(0, 0, 2.0);
        s.push(1, 1, 2.0);
        s.push(2, 2, 1.0);
        assert!(CsrMatrix::from_coo(&s).is_symmetric(1e-12));
    }

    #[test]
    fn norms_and_extrema() {
        let a = CsrMatrix::from_coo(&example_coo());
        let expected_fro = (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0).sqrt();
        assert!((a.frobenius_norm() - expected_fro).abs() < 1e-14);
        assert_eq!(a.max_abs(), 5.0);
        assert_eq!(a.min_abs_nonzero(), Some(1.0));
    }

    #[test]
    fn csr_coo_roundtrip() {
        let a = CsrMatrix::from_coo(&example_coo());
        let b = CsrMatrix::from_coo(&a.to_coo());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let coo = CooMatrix::new(4, 4);
        let a = CsrMatrix::from_coo(&coo);
        assert_eq!(a.nnz(), 0);
        let y = a.spmv(&[1.0; 4]);
        assert_eq!(y, vec![0.0; 4]);
        assert_eq!(a.min_abs_nonzero(), None);
    }
}
