//! Error type shared by the sparse-matrix substrate.

use std::fmt;

/// Errors produced while constructing, converting or using sparse matrices.
#[derive(Debug)]
pub enum SparseError {
    /// An entry referenced a row or column outside the matrix dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        nrows: usize,
        /// Number of columns in the matrix.
        ncols: usize,
    },
    /// Two containers that must agree in length (e.g. triplet arrays) did not.
    LengthMismatch {
        /// Description of what was being compared.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A vector passed to an operation has the wrong dimension.
    DimensionMismatch {
        /// Description of the operation.
        what: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// The Matrix Market file could not be parsed.
    MatrixMarket(String),
    /// Underlying I/O error while reading or writing a file.
    Io(std::io::Error),
    /// A parameter was invalid (e.g. a zero block size).
    InvalidParameter(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {nrows}x{ncols} matrix"
            ),
            SparseError::LengthMismatch {
                what,
                expected,
                actual,
            } => {
                write!(f, "{what}: expected length {expected}, got {actual}")
            }
            SparseError::DimensionMismatch {
                what,
                expected,
                actual,
            } => {
                write!(f, "{what}: expected dimension {expected}, got {actual}")
            }
            SparseError::MatrixMarket(msg) => write!(f, "Matrix Market parse error: {msg}"),
            SparseError::Io(err) => write!(f, "I/O error: {err}"),
            SparseError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(err: std::io::Error) -> Self {
        SparseError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 7,
            nrows: 4,
            ncols: 4,
        };
        assert!(e.to_string().contains("(5, 7)"));
        assert!(e.to_string().contains("4x4"));

        let e = SparseError::LengthMismatch {
            what: "values",
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("values"));

        let e = SparseError::DimensionMismatch {
            what: "spmv input",
            expected: 10,
            actual: 9,
        };
        assert!(e.to_string().contains("spmv input"));

        let e = SparseError::MatrixMarket("bad header".into());
        assert!(e.to_string().contains("bad header"));

        let e = SparseError::InvalidParameter("block size must be > 0".into());
        assert!(e.to_string().contains("block size"));
    }

    #[test]
    fn io_error_is_wrapped_and_sourced() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.mtx");
        let e: SparseError = io.into();
        assert!(e.to_string().contains("missing.mtx"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
