//! Random telegraph noise (RTN) — the robustness study of Fig. 10.
//!
//! RTN makes the programmed conductance of a ReRAM cell fluctuate between reads; the
//! paper models it as a multiplicative perturbation with deviation σ (0.1%–25%) applied
//! to the stored matrix values on every use, with error correction disabled.
//! [`NoisyReFloatOperator`] wraps the functional ReFloat operator and perturbs each
//! stored (quantized) matrix value independently on every SpMV.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use refloat_core::vector::VectorConverter;
use refloat_core::ReFloatMatrix;
use refloat_solvers::LinearOperator;

/// A ReFloat operator whose stored values are perturbed by multiplicative RTN noise on
/// every application.
pub struct NoisyReFloatOperator {
    inner: ReFloatMatrix,
    converter: VectorConverter,
    sigma: f64,
    rng: ChaCha8Rng,
    scratch: Vec<f64>,
}

impl NoisyReFloatOperator {
    /// Wraps a ReFloat matrix with RTN of relative deviation `sigma` (e.g. 0.01 = 1%).
    pub fn new(inner: ReFloatMatrix, sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "noise deviation must be non-negative");
        let converter = VectorConverter::new(*inner.config());
        let ncols = LinearOperator::ncols(&inner);
        NoisyReFloatOperator {
            inner,
            converter,
            sigma,
            rng: ChaCha8Rng::seed_from_u64(seed),
            scratch: vec![0.0; ncols],
        }
    }

    /// The noise deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// A zero-mean, unit-variance deviate — see [`irwin_hall_unit`], which both this
    /// helper and [`apply`](LinearOperator::apply) share so the two cannot drift.
    #[cfg_attr(not(test), allow(dead_code))]
    fn gaussian_like(&mut self) -> f64 {
        irwin_hall_unit(&mut self.rng)
    }
}

/// A zero-mean, unit-variance deviate from the sum of four uniforms (Irwin–Hall,
/// variance 4/12, rescaled by √3) — cheap and close enough to Gaussian for a
/// multiplicative noise model, with support bounded to ±2√3.
///
/// This is the single definition of the deviate: the per-read perturbation in the SpMV
/// loop and the test-facing [`NoisyReFloatOperator::gaussian_like`] both call it, so
/// the sampled distribution can never diverge between the two.
pub(crate) fn irwin_hall_unit(rng: &mut ChaCha8Rng) -> f64 {
    // Four explicit chained adds: same left-to-right order (and bits) as the old
    // iterator sum, without the open-ended `.sum::<f64>()` accumulation pattern.
    let s = rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 2.0;
    s * (3.0f64).sqrt()
}

impl LinearOperator for NoisyReFloatOperator {
    fn nrows(&self) -> usize {
        LinearOperator::nrows(&self.inner)
    }

    fn ncols(&self) -> usize {
        LinearOperator::ncols(&self.inner)
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        // Quantize the input exactly as the noiseless operator would...
        let mut buf = std::mem::take(&mut self.scratch);
        self.converter.convert_into(x, &mut buf);
        for yi in y.iter_mut() {
            *yi = 0.0;
        }
        // ...then accumulate block products with per-read perturbed matrix values.
        let bs = self.inner.config().block_size();
        let sigma = self.sigma;
        // Pull the RNG out to avoid borrowing `self` twice inside the loop.
        let mut rng = self.rng.clone();
        for blk in self.inner.blocks() {
            let row0 = blk.block_row * bs;
            let col0 = blk.block_col * bs;
            for (ii, jj, v) in blk.iter_decoded() {
                let noise: f64 = if sigma == 0.0 {
                    0.0
                } else {
                    sigma * irwin_hall_unit(&mut rng)
                };
                y[row0 + ii as usize] += v * (1.0 + noise) * buf[col0 + jj as usize];
            }
        }
        self.rng = rng;
        self.scratch = buf;
    }

    fn name(&self) -> String {
        format!("{} + RTN σ = {:.3}", self.inner.name(), self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_core::ReFloatConfig;
    use refloat_matgen::{generators, rhs};
    use refloat_solvers::{cg, SolverConfig};
    use refloat_sparse::vecops;

    fn small_refloat() -> ReFloatMatrix {
        let a = generators::laplacian_2d(16, 16, 0.4).to_csr();
        ReFloatMatrix::from_csr(&a, ReFloatConfig::new(4, 3, 8, 3, 8))
    }

    #[test]
    fn zero_noise_matches_the_noiseless_operator() {
        let mut clean = small_refloat();
        let mut noisy = NoisyReFloatOperator::new(small_refloat(), 0.0, 7);
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.01).sin() + 1.0).collect();
        let mut y1 = vec![0.0; 256];
        let mut y2 = vec![0.0; 256];
        clean.apply(&x, &mut y1);
        noisy.apply(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn noise_magnitude_scales_with_sigma() {
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).cos() + 2.0).collect();
        let mut clean = small_refloat();
        let mut y_clean = vec![0.0; 256];
        clean.apply(&x, &mut y_clean);

        let mut err_small = 0.0;
        let mut err_large = 0.0;
        for (sigma, err) in [(0.001, &mut err_small), (0.1, &mut err_large)] {
            let mut noisy = NoisyReFloatOperator::new(small_refloat(), sigma, 42);
            let mut y = vec![0.0; 256];
            noisy.apply(&x, &mut y);
            *err = vecops::rel_err(&y, &y_clean);
        }
        assert!(err_small < err_large);
        assert!(
            err_small < 0.01,
            "0.1% noise should barely perturb: {err_small}"
        );
        assert!(err_large < 0.5, "10% noise stays bounded: {err_large}");
    }

    #[test]
    fn noise_differs_between_applications() {
        // RTN is temporal: two reads of the same operator see different perturbations.
        let mut noisy = NoisyReFloatOperator::new(small_refloat(), 0.05, 3);
        let x = vec![1.0; 256];
        let mut y1 = vec![0.0; 256];
        let mut y2 = vec![0.0; 256];
        noisy.apply(&x, &mut y1);
        noisy.apply(&x, &mut y2);
        assert_ne!(y1, y2);
    }

    #[test]
    fn cg_tolerates_moderate_noise_like_fig10() {
        // Fig. 10: within ~10% noise the solver still converges (with more iterations).
        let a = generators::laplacian_2d(16, 16, 0.4).to_csr();
        let b = rhs::ones(a.nrows());
        let cfg = SolverConfig::relative(1e-8).with_max_iterations(3000);

        let mut clean = small_refloat();
        let r_clean = cg(&mut clean, &b, &cfg);
        assert!(r_clean.converged());

        let mut noisy = NoisyReFloatOperator::new(small_refloat(), 0.01, 11);
        let r_noisy = cg(&mut noisy, &b, &cfg);
        assert!(r_noisy.converged(), "1% RTN should still converge");
        assert!(r_noisy.iterations >= r_clean.iterations);
    }

    #[test]
    fn gaussian_like_deviate_is_roughly_centered() {
        let mut op = NoisyReFloatOperator::new(small_refloat(), 0.1, 5);
        let samples: Vec<f64> = (0..2000).map(|_| op.gaussian_like()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        let variance =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!((variance - 1.0).abs() < 0.2, "variance {variance}");
        assert!(samples
            .iter()
            .all(|s| s.abs() <= 2.0 * 3.0f64.sqrt() + 1e-12));
    }
}
