//! Persistent device faults: stuck-at cells, conductance drift with age, and wear.
//!
//! Where [`crate::noise`] models benign zero-mean *read* noise (Fig. 10), this module
//! models the faults that production ReRAM actually serves through:
//!
//! * **Stuck-at cells** — manufacturing defects and endurance failures pin a cell at
//!   minimum (`stuck-at-low`) or maximum (`stuck-at-high`) conductance.  The set of
//!   stuck cells is *persistent*: a pure, seeded function of
//!   `(seed, chip, crossbar, age)` — see [`FaultMap`] — so any thread, retry, or
//!   replay observes bitwise-identical hardware.
//! * **Drift with age** — a programmed conductance state relaxes over time.  We model a
//!   per-crossbar common-mode lognormal factor `exp(σ_eff · z)` whose effective sigma
//!   grows with the programming count (`σ_eff = σ · ln(1 + age)`), after the
//!   lognormal resistance-state modeling of RRAM reliability studies.  A freshly
//!   programmed crossbar (`age = 0`) has no drift.
//! * **Wear** — every reprogramming accumulates writes ([`ChipFaultState`]); the stuck
//!   cell count escalates linearly with age, so heavily re-encoded chips degrade.
//!
//! [`FaultyReFloatOperator`] is the execution path: it wraps an encoded matrix, applies
//! spare-row/column remapping ([`refloat_core::resilience::RemapPlan`]) around the
//! sampled stuck cells, corrupts whatever the spares could not absorb, applies
//! per-crossbar drift, and (optionally) runs the per-block ABFT checksum test after
//! every SpMV, counting detections for the runtime's `HealthTracker` to consume.
//! [`DeviceHealth`] is the read-side summary trait the accelerators expose.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

use crate::noise::irwin_hall_unit;
use refloat_core::resilience::{AbftChecksum, RemapPlan, SpareBudget, StuckCell};
use refloat_core::vector::VectorConverter;
use refloat_core::ReFloatMatrix;
use refloat_solvers::LinearOperator;
use refloat_sparse::vecops;

/// Knobs of the persistent fault model.  All sampling is a pure function of these
/// values plus `(chip, crossbar, age)` — no global state, no wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModelConfig {
    /// Master seed; distinct seeds give statistically independent fleets.
    pub seed: u64,
    /// Probability that a cell is stuck at minimum conductance (reads as 0).
    pub stuck_low_rate: f64,
    /// Probability that a cell is stuck at maximum conductance (reads as the top of
    /// the block's representable window).
    pub stuck_high_rate: f64,
    /// Base lognormal drift sigma; the effective sigma is `σ · ln(1 + age)`.
    pub drift_sigma: f64,
    /// Linear escalation of the stuck rates per programming: at age `n` the rates are
    /// multiplied by `1 + wear_growth · n`.
    pub wear_growth: f64,
}

impl FaultModelConfig {
    /// Rates representative of a mature ReRAM process: ~0.1% stuck-low, ~0.02%
    /// stuck-high, 1% base drift sigma, 0.1% wear escalation per reprogram.
    pub fn realistic(seed: u64) -> Self {
        FaultModelConfig {
            seed,
            stuck_low_rate: 1e-3,
            stuck_high_rate: 2e-4,
            drift_sigma: 0.01,
            wear_growth: 1e-3,
        }
    }

    /// A fault-free device (all rates zero) — useful as an explicit control.
    pub fn pristine(seed: u64) -> Self {
        FaultModelConfig {
            seed,
            stuck_low_rate: 0.0,
            stuck_high_rate: 0.0,
            drift_sigma: 0.0,
            wear_growth: 0.0,
        }
    }
}

/// SplitMix64-style avalanche over a seed and a few key parts — the sub-stream keying
/// for per-crossbar RNGs.
fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &p in parts {
        h ^= p.wrapping_mul(0xff51_afd7_ed55_8ccd).rotate_left(31);
        h = h
            .wrapping_mul(0xc4ce_b9fe_1a85_ec53)
            .wrapping_add(0x1656_67b1_9e37_79f9);
    }
    h ^= h >> 33;
    h.wrapping_mul(0xff51_afd7_ed55_8ccd)
}

/// One sampled stuck cell inside a crossbar grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckCellSample {
    /// Local row, `< grid`.
    pub row: u16,
    /// Local column, `< grid`.
    pub col: u16,
    /// `true` = stuck-at-high.
    pub high: bool,
}

/// The persistent per-crossbar fault map of one chip.
///
/// Stuck cells grow monotonically with age: each crossbar owns a deterministic
/// defect *stream*; age only moves the cut-off along the stream, so the map at age
/// `n + 1` is a superset of the map at age `n` (defects never heal).
#[derive(Debug, Clone)]
pub struct FaultMap {
    config: FaultModelConfig,
    chip: usize,
}

impl FaultMap {
    /// A fault map for one chip under the given model.
    pub fn new(config: FaultModelConfig, chip: usize) -> Self {
        FaultMap { config, chip }
    }

    /// The model configuration.
    pub fn config(&self) -> &FaultModelConfig {
        &self.config
    }

    /// The stuck cells of `crossbar` (a `grid × grid` array) at programming age `age`.
    ///
    /// Pure and deterministic: same `(seed, chip, crossbar, grid, age)` ⇒ bitwise-same
    /// result on any thread.  Monotone: raising `age` (or the configured rates) never
    /// removes a cell.
    pub fn stuck_cells(&self, crossbar: usize, grid: usize, age: u64) -> Vec<StuckCellSample> {
        let rate = self.config.stuck_low_rate + self.config.stuck_high_rate;
        if rate <= 0.0 || grid == 0 {
            return Vec::new();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(mix(
            self.config.seed,
            &[self.chip as u64, crossbar as u64, 0xA11C_E5ED],
        ));
        // Probabilistic rounding with a per-crossbar threshold drawn *before* the cell
        // stream: count = floor(expected − u) + 1 is monotone in `expected`, so aging
        // only ever appends to the defect list.
        let u: f64 = rng.gen();
        let cells = (grid * grid) as f64;
        let expected = cells * rate * (1.0 + self.config.wear_growth * age as f64);
        let count = ((expected - u).floor() + 1.0).max(0.0) as usize;
        let count = count.min(grid * grid);
        let high_share = self.config.stuck_high_rate / rate;
        let mut seen: BTreeSet<(u16, u16)> = BTreeSet::new();
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let row = rng.gen_range(0..grid) as u16;
            let col = rng.gen_range(0..grid) as u16;
            if !seen.insert((row, col)) {
                continue;
            }
            let high = rng.gen::<f64>() < high_share;
            out.push(StuckCellSample { row, col, high });
        }
        out
    }

    /// The common-mode conductance drift factor of `crossbar` at programming age
    /// `age`: `exp(σ_eff · z)` with `σ_eff = σ · ln(1 + age)` and `z` a bounded
    /// unit deviate.  Freshly programmed (`age = 0`) crossbars return exactly 1.
    pub fn drift_factor(&self, crossbar: usize, age: u64) -> f64 {
        let sigma_eff = self.config.drift_sigma * (1.0 + age as f64).ln();
        if sigma_eff == 0.0 {
            return 1.0;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(mix(
            self.config.seed,
            &[self.chip as u64, crossbar as u64, 0xD21F_7000 + age],
        ));
        (sigma_eff * irwin_hall_unit(&mut rng)).exp()
    }
}

/// Mutable per-chip fault state: the persistent [`FaultMap`] plus the programming
/// count (the "age" every sampling call is keyed on) and accumulated wear.
#[derive(Debug, Clone)]
pub struct ChipFaultState {
    map: FaultMap,
    chip: usize,
    grid: usize,
    programmings: u64,
    wear_writes: u64,
}

impl ChipFaultState {
    /// Fault state for one chip whose crossbars are `grid × grid` cells.
    pub fn new(config: FaultModelConfig, chip: usize, grid: usize) -> Self {
        ChipFaultState {
            map: FaultMap::new(config, chip),
            chip,
            grid,
            programmings: 0,
            wear_writes: 0,
        }
    }

    /// The underlying fault map.
    pub fn map(&self) -> &FaultMap {
        &self.map
    }

    /// The crossbar grid size this chip was built with.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// The programming age (count of whole-matrix programmings).
    pub fn age(&self) -> u64 {
        self.programmings
    }

    /// Records one (re)programming of `blocks` crossbars: bumps the age every
    /// subsequent sampling call is keyed on and accumulates wear writes.
    pub fn record_programming(&mut self, blocks: u64) {
        self.programmings += 1;
        self.wear_writes += blocks;
    }
}

/// A point-in-time health summary of one chip, as exposed by [`DeviceHealth`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSummary {
    /// The chip id.
    pub chip: usize,
    /// Whole-matrix programmings so far (the fault-model age).
    pub programmings: u64,
    /// Accumulated crossbar writes.
    pub wear_writes: u64,
    /// Stuck-at-low cells over the probe crossbars.
    pub stuck_low: usize,
    /// Stuck-at-high cells over the probe crossbars.
    pub stuck_high: usize,
    /// The effective drift sigma at the current age.
    pub drift_sigma_effective: f64,
    /// A dimensionless degradation score: probed stuck-cell fraction plus effective
    /// drift sigma.  0 = pristine; monotone non-decreasing with age.
    pub degradation: f64,
}

/// Read-side health reporting: anything owning fault state can summarize it.
///
/// The summary probes a fixed, small set of crossbars (so it is cheap and identical
/// across callers) and is a pure function of the fault state — calling it never
/// perturbs the device.
pub trait DeviceHealth {
    /// Summarizes current device health.
    fn health(&self) -> HealthSummary;
}

/// How many crossbars the health probe samples.
const HEALTH_PROBE_CROSSBARS: usize = 8;

impl DeviceHealth for ChipFaultState {
    fn health(&self) -> HealthSummary {
        let mut stuck_low = 0;
        let mut stuck_high = 0;
        for xbar in 0..HEALTH_PROBE_CROSSBARS {
            for cell in self.map.stuck_cells(xbar, self.grid, self.programmings) {
                if cell.high {
                    stuck_high += 1;
                } else {
                    stuck_low += 1;
                }
            }
        }
        let probe_cells = (HEALTH_PROBE_CROSSBARS * self.grid * self.grid).max(1) as f64;
        let sigma_eff = self.map.config.drift_sigma * (1.0 + self.programmings as f64).ln();
        HealthSummary {
            chip: self.chip,
            programmings: self.programmings,
            wear_writes: self.wear_writes,
            stuck_low,
            stuck_high,
            drift_sigma_effective: sigma_eff,
            degradation: (stuck_low + stuck_high) as f64 / probe_cells + sigma_eff,
        }
    }
}

/// One uncovered stuck cell's effect on a block's SpMV contribution.
#[derive(Debug, Clone, Copy)]
struct Corruption {
    row: u16,
    col: u16,
    /// `stuck_value − clean_value` at that position; the apply adds
    /// `delta · drift · x̃[col]` to `y[row]`.
    delta: f64,
}

/// A ReFloat operator executing on faulty hardware.
///
/// Construction samples the chip's stuck cells for every block (block *i* maps to
/// crossbar *i*), plans spare remapping under the given budget, and precomputes the
/// residual corruption and per-crossbar drift factors at the chip's current age.
/// Every [`apply`](LinearOperator::apply) then runs the quantized SpMV through that
/// fixed hardware state; with ABFT enabled, each apply ends with the checksum residual
/// test and bumps [`detections`](Self::detections) on failure.
pub struct FaultyReFloatOperator {
    inner: ReFloatMatrix,
    converter: VectorConverter,
    scratch: Vec<f64>,
    /// Per-block common-mode drift factor.
    drift: Vec<f64>,
    /// Per-block residual corruption (uncovered stuck cells only).
    corruptions: Vec<Vec<Corruption>>,
    checksum: Option<AbftChecksum>,
    abft_threshold: f64,
    detections: u64,
    uncovered: usize,
    covered: usize,
}

impl FaultyReFloatOperator {
    /// Wraps an encoded matrix with the fault state of `chip`, remapping around stuck
    /// cells under `spares`.  `abft_threshold` = `Some(t)` enables the per-apply
    /// checksum test at relative threshold `t` (1e-8 is a safe default: clean applies
    /// sit near machine epsilon).
    pub fn new(
        inner: ReFloatMatrix,
        chip: &ChipFaultState,
        spares: SpareBudget,
        abft_threshold: Option<f64>,
    ) -> Self {
        Self::remapped(inner, chip, spares, abft_threshold, 0)
    }

    /// Like [`new`](Self::new), but programs block *i* onto crossbar
    /// `i + crossbar_offset` instead of crossbar *i*.
    ///
    /// Stuck cells are monotone — re-programming the *same* crossbars can never
    /// heal a defect — so a retry after a detected corruption must move the
    /// encoding onto fresh crossbars to have any chance of succeeding.  The
    /// runtime's re-encode path passes `attempt × num_blocks` here so each retry
    /// samples a disjoint crossbar range of the same persistent chip.
    pub fn remapped(
        inner: ReFloatMatrix,
        chip: &ChipFaultState,
        spares: SpareBudget,
        abft_threshold: Option<f64>,
        crossbar_offset: usize,
    ) -> Self {
        let config = *inner.config();
        let bs = config.block_size();
        let age = chip.age();
        let max_mag = 2f64.powi(config.max_offset() + 1);

        // Sample every block's crossbar and plan remapping across all of them.
        let mut cells: Vec<StuckCell> = Vec::new();
        for (b, _) in inner.blocks().iter().enumerate() {
            for s in chip.map().stuck_cells(b + crossbar_offset, bs, age) {
                cells.push(StuckCell {
                    block: b,
                    row: s.row,
                    col: s.col,
                    high: s.high,
                });
            }
        }
        let plan = RemapPlan::plan(&cells, &spares);

        let (nrows, ncols) = (LinearOperator::nrows(&inner), LinearOperator::ncols(&inner));
        let mut corruptions: Vec<Vec<Corruption>> = vec![Vec::new(); inner.num_blocks()];
        for cell in plan.uncovered() {
            let blk = &inner.blocks()[cell.block];
            // Edge blocks cover a partial tile; a defect outside the logical matrix
            // maps to no element and cannot corrupt anything.
            if blk.block_row * bs + cell.row as usize >= nrows
                || blk.block_col * bs + cell.col as usize >= ncols
            {
                continue;
            }
            let clean = blk
                .iter_decoded()
                .find(|&(ii, jj, _)| ii == cell.row && jj == cell.col)
                .map(|(_, _, v)| v)
                .unwrap_or(0.0);
            // Stuck-at-high pins the cell at the top of the block's representable
            // window (`2^{eb + max_offset + 1}`); stuck-at-low reads as zero.
            let stuck = if cell.high {
                max_mag * 2f64.powi(blk.eb)
            } else {
                0.0
            };
            let delta = stuck - clean;
            if delta != 0.0 {
                corruptions[cell.block].push(Corruption {
                    row: cell.row,
                    col: cell.col,
                    delta,
                });
            }
        }

        let drift: Vec<f64> = (0..inner.num_blocks())
            .map(|b| chip.map().drift_factor(b + crossbar_offset, age))
            .collect();
        let checksum = abft_threshold.map(|_| AbftChecksum::from_matrix(&inner));
        FaultyReFloatOperator {
            inner,
            converter: VectorConverter::new(config),
            scratch: vec![0.0; ncols],
            drift,
            corruptions,
            checksum,
            abft_threshold: abft_threshold.unwrap_or(0.0),
            detections: 0,
            uncovered: plan.uncovered().len(),
            covered: plan.covered().len(),
        }
    }

    /// Number of checksum-test failures across all applies so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Stuck cells the spare budget could not absorb (the active corruption).
    pub fn uncovered_faults(&self) -> usize {
        self.uncovered
    }

    /// Stuck cells remapped onto spares (read correctly).
    pub fn covered_faults(&self) -> usize {
        self.covered
    }

    /// Whether the ABFT checksum test runs after every apply.
    pub fn abft_enabled(&self) -> bool {
        self.checksum.is_some()
    }
}

impl LinearOperator for FaultyReFloatOperator {
    fn nrows(&self) -> usize {
        LinearOperator::nrows(&self.inner)
    }

    fn ncols(&self) -> usize {
        LinearOperator::ncols(&self.inner)
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        let mut buf = std::mem::take(&mut self.scratch);
        self.converter.convert_into(x, &mut buf);
        for yi in y.iter_mut() {
            *yi = 0.0;
        }
        let bs = self.inner.config().block_size();
        for (b, blk) in self.inner.blocks().iter().enumerate() {
            let row0 = blk.block_row * bs;
            let col0 = blk.block_col * bs;
            let d = self.drift[b];
            if d == 1.0 {
                // Bitwise-identical to the clean operator when this crossbar has no
                // drift — fault-free configs therefore reproduce clean digests.
                for (ii, jj, v) in blk.iter_decoded() {
                    y[row0 + ii as usize] += v * buf[col0 + jj as usize];
                }
            } else {
                for (ii, jj, v) in blk.iter_decoded() {
                    y[row0 + ii as usize] += v * d * buf[col0 + jj as usize];
                }
            }
            for c in &self.corruptions[b] {
                y[row0 + c.row as usize] += c.delta * d * buf[col0 + c.col as usize];
            }
        }
        if let Some(checksum) = &self.checksum {
            let residual = checksum.residual(&buf, &self.drift, vecops::sum(y));
            if residual > self.abft_threshold {
                self.detections += 1;
            }
        }
        self.scratch = buf;
    }

    fn name(&self) -> String {
        format!(
            "{} + faults ({} uncovered, ABFT {})",
            self.inner.name(),
            self.uncovered,
            if self.checksum.is_some() { "on" } else { "off" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use refloat_core::ReFloatConfig;
    use refloat_matgen::{generators, rhs};
    use refloat_solvers::{cg, SolverConfig};

    fn small_refloat() -> ReFloatMatrix {
        let a = generators::laplacian_2d(16, 16, 0.4).to_csr();
        ReFloatMatrix::from_csr(&a, ReFloatConfig::new(4, 3, 8, 3, 8))
    }

    fn heavy_faults(seed: u64) -> FaultModelConfig {
        FaultModelConfig {
            seed,
            stuck_low_rate: 5e-3,
            stuck_high_rate: 1e-3,
            drift_sigma: 0.0,
            wear_growth: 0.0,
        }
    }

    #[test]
    fn pristine_model_is_bitwise_identical_to_the_clean_operator() {
        let chip = ChipFaultState::new(FaultModelConfig::pristine(9), 0, 16);
        let mut clean = small_refloat();
        let mut faulty = FaultyReFloatOperator::new(
            small_refloat(),
            &chip,
            SpareBudget::default_per_crossbar(),
            Some(1e-8),
        );
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.01).sin() + 1.0).collect();
        let mut y1 = vec![0.0; 256];
        let mut y2 = vec![0.0; 256];
        clean.apply(&x, &mut y1);
        faulty.apply(&x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(faulty.detections(), 0);
        assert_eq!(faulty.uncovered_faults(), 0);
    }

    #[test]
    fn fault_maps_and_drift_are_identical_across_threads() {
        let sample = || {
            let map = FaultMap::new(FaultModelConfig::realistic(42), 3);
            let mut cells = Vec::new();
            let mut drifts = Vec::new();
            for xbar in 0..32 {
                for age in 0..4 {
                    cells.push(map.stuck_cells(xbar, 16, age));
                    drifts.push(map.drift_factor(xbar, age).to_bits());
                }
            }
            (cells, drifts)
        };
        let reference = sample();
        let handles: Vec<_> = (0..4).map(|_| std::thread::spawn(sample)).collect();
        for h in handles {
            let got = h.join().expect("sampler thread");
            assert_eq!(got.0, reference.0, "stuck cells must be thread-invariant");
            assert_eq!(got.1, reference.1, "drift must be thread-invariant");
        }
    }

    #[test]
    fn stuck_cells_grow_monotonically_with_age() {
        let map = FaultMap::new(FaultModelConfig::realistic(7), 0);
        for xbar in 0..16 {
            let mut prev = map.stuck_cells(xbar, 16, 0);
            for age in 1..200 {
                let next = map.stuck_cells(xbar, 16, age);
                assert!(next.len() >= prev.len());
                assert_eq!(&next[..prev.len()], &prev[..], "defects never heal");
                prev = next;
            }
        }
    }

    #[test]
    fn fresh_crossbars_have_no_drift_and_aged_ones_do() {
        let map = FaultMap::new(FaultModelConfig::realistic(11), 0);
        for xbar in 0..8 {
            assert_eq!(map.drift_factor(xbar, 0), 1.0);
        }
        let drifted = (0..64).filter(|&x| map.drift_factor(x, 10) != 1.0).count();
        assert!(drifted > 32, "most aged crossbars should drift: {drifted}");
    }

    #[test]
    fn abft_detects_uncovered_stuck_cells_and_stays_quiet_when_covered() {
        // No spares: heavy fault rates guarantee uncovered cells somewhere.
        let chip = ChipFaultState::new(heavy_faults(5), 0, 16);
        let mut faulty =
            FaultyReFloatOperator::new(small_refloat(), &chip, SpareBudget::none(), Some(1e-8));
        assert!(faulty.uncovered_faults() > 0, "test needs active faults");
        let x: Vec<f64> = (0..256).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
        let mut y = vec![0.0; 256];
        faulty.apply(&x, &mut y);
        assert!(faulty.detections() > 0, "corruption must trip the checksum");

        // A huge spare budget covers everything: no corruption, no detections.
        let mut covered = FaultyReFloatOperator::new(
            small_refloat(),
            &chip,
            SpareBudget { rows: 16, cols: 16 },
            Some(1e-8),
        );
        assert_eq!(covered.uncovered_faults(), 0);
        assert!(covered.covered_faults() > 0);
        let mut y2 = vec![0.0; 256];
        covered.apply(&x, &mut y2);
        assert_eq!(covered.detections(), 0);
    }

    #[test]
    fn drift_alone_never_trips_the_checksum() {
        let config = FaultModelConfig {
            seed: 13,
            stuck_low_rate: 0.0,
            stuck_high_rate: 0.0,
            drift_sigma: 0.05,
            wear_growth: 0.0,
        };
        let mut chip = ChipFaultState::new(config, 0, 16);
        for _ in 0..5 {
            chip.record_programming(100);
        }
        let mut clean = small_refloat();
        let mut faulty =
            FaultyReFloatOperator::new(small_refloat(), &chip, SpareBudget::none(), Some(1e-8));
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.02).cos() + 1.5).collect();
        let mut y1 = vec![0.0; 256];
        let mut y2 = vec![0.0; 256];
        clean.apply(&x, &mut y1);
        faulty.apply(&x, &mut y2);
        assert_ne!(y1, y2, "5% aged drift must perturb the result");
        assert_eq!(
            faulty.detections(),
            0,
            "common-mode drift is benign to ABFT"
        );
    }

    #[test]
    fn cg_on_remapped_hardware_converges_like_clean_hardware() {
        let a = generators::laplacian_2d(16, 16, 0.4).to_csr();
        let b = rhs::ones(a.nrows());
        let cfg = SolverConfig::relative(1e-8).with_max_iterations(3000);
        let mut clean = small_refloat();
        let r_clean = cg(&mut clean, &b, &cfg);
        assert!(r_clean.converged());

        // Full coverage ⇒ the faulty operator is numerically the clean one.
        let chip = ChipFaultState::new(heavy_faults(3), 0, 16);
        let mut remapped = FaultyReFloatOperator::new(
            small_refloat(),
            &chip,
            SpareBudget { rows: 16, cols: 16 },
            Some(1e-8),
        );
        let r_remapped = cg(&mut remapped, &b, &cfg);
        assert!(r_remapped.converged());
        assert_eq!(r_remapped.iterations, r_clean.iterations);
        assert_eq!(remapped.detections(), 0);
    }

    #[test]
    fn remapped_operator_samples_a_disjoint_crossbar_range() {
        // The retry path's whole premise: the same chip, the same encoding, but a
        // crossbar offset gives an independent draw of the persistent fault map.
        let chip = ChipFaultState::new(heavy_faults(5), 0, 16);
        let mut base =
            FaultyReFloatOperator::new(small_refloat(), &chip, SpareBudget::none(), Some(1e-8));
        assert!(base.uncovered_faults() > 0, "test needs active faults");
        let blocks = small_refloat().num_blocks();
        let mut retry = FaultyReFloatOperator::remapped(
            small_refloat(),
            &chip,
            SpareBudget::none(),
            Some(1e-8),
            blocks,
        );
        let x: Vec<f64> = (0..256).map(|i| 1.0 + (i % 7) as f64 * 0.2).collect();
        let mut y1 = vec![0.0; 256];
        let mut y2 = vec![0.0; 256];
        base.apply(&x, &mut y1);
        retry.apply(&x, &mut y2);
        assert_ne!(y1, y2, "offset crossbars carry different defects");
        // Offset 0 through `remapped` is exactly `new`.
        let same =
            FaultyReFloatOperator::remapped(small_refloat(), &chip, SpareBudget::none(), None, 0);
        assert_eq!(same.uncovered_faults(), base.uncovered_faults());
    }

    #[test]
    fn health_summary_degrades_monotonically_with_programmings() {
        let mut chip = ChipFaultState::new(FaultModelConfig::realistic(21), 4, 16);
        let fresh = chip.health();
        assert_eq!(fresh.chip, 4);
        assert_eq!(fresh.programmings, 0);
        assert_eq!(fresh.drift_sigma_effective, 0.0);
        let mut last = fresh.degradation;
        for round in 1..=50u64 {
            chip.record_programming(64);
            let h = chip.health();
            assert_eq!(h.programmings, round);
            assert_eq!(h.wear_writes, round * 64);
            assert!(h.degradation >= last, "wear only accumulates");
            last = h.degradation;
        }
        assert!(last > fresh.degradation);
    }

    proptest! {
        #[test]
        fn sampled_cells_stay_inside_the_grid_and_scale_with_rate(
            seed in 0u64..1000,
            crossbar in 0usize..64,
            grid in 4usize..33,
            rate in 0.0f64..0.05,
            age in 0u64..20,
        ) {
            let base = FaultModelConfig {
                seed,
                stuck_low_rate: rate,
                stuck_high_rate: rate / 4.0,
                drift_sigma: 0.0,
                wear_growth: 0.01,
            };
            let cells = FaultMap::new(base, 1).stuck_cells(crossbar, grid, age);
            let mut positions = BTreeSet::new();
            for c in &cells {
                prop_assert!((c.row as usize) < grid);
                prop_assert!((c.col as usize) < grid);
                prop_assert!(positions.insert((c.row, c.col)), "positions are distinct");
            }
            prop_assert!(cells.len() <= grid * grid);
            // Doubling the rates never shrinks the defect count.
            let doubled = FaultModelConfig {
                stuck_low_rate: rate * 2.0,
                stuck_high_rate: rate / 2.0,
                ..base
            };
            let more = FaultMap::new(doubled, 1).stuck_cells(crossbar, grid, age);
            prop_assert!(more.len() >= cells.len());
        }
    }
}
