//! Single-bit crossbars and the bit-sliced fixed-point MVM pipeline of Fig. 2.
//!
//! A ReRAM crossbar stores one bit-slice of a matrix block as cell conductances; driving
//! wordlines with one bit of the input vector produces, on every bitline, the *count* of
//! cells where both the stored bit and the input bit are 1 — a binary dot product
//! evaluated in the analog domain and digitized by the shared ADC.  Multi-bit operands
//! are handled by slicing the matrix across crossbars and streaming the vector bits
//! serially, combining partial results with shift-and-add exactly as the example in
//! Fig. 2 / Eq. 1 of the paper.

/// A single-bit `size × size` crossbar: each cell stores 0 or 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitCrossbar {
    size: usize,
    /// Row-major cell bits.
    cells: Vec<bool>,
}

impl BitCrossbar {
    /// Creates an empty (all-zero) crossbar.
    pub fn new(size: usize) -> Self {
        BitCrossbar {
            size,
            cells: vec![false; size * size],
        }
    }

    /// Builds the crossbar holding bit `bit` of every entry of a row-major unsigned
    /// integer matrix.
    ///
    /// # Panics
    /// Panics if `matrix.len() != size * size`.
    pub fn from_bit_slice(matrix: &[u64], size: usize, bit: u32) -> Self {
        assert_eq!(matrix.len(), size * size, "bit slice: matrix must be size²");
        let cells = matrix.iter().map(|&m| (m >> bit) & 1 == 1).collect();
        BitCrossbar { size, cells }
    }

    /// Crossbar edge length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sets one cell.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        self.cells[row * self.size + col] = value;
    }

    /// Reads one cell.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.cells[row * self.size + col]
    }

    /// Number of programmed (1) cells — proportional to the programming energy.
    pub fn ones(&self) -> usize {
        self.cells.iter().filter(|&&c| c).count()
    }

    /// The analog read: for a 1-bit input vector on the wordlines, returns the per-column
    /// accumulated current, i.e. the count of `(cell AND input)` per bitline.
    ///
    /// The count is at most `size`, which is what bounds the ADC resolution to `b` bits
    /// (`fx = b` in Fig. 6's description).
    ///
    /// # Panics
    /// Panics if `input.len() != size`.
    pub fn dot_columns(&self, input: &[bool]) -> Vec<u32> {
        assert_eq!(
            input.len(),
            self.size,
            "crossbar input must have one bit per wordline"
        );
        let mut out = vec![0u32; self.size];
        for (row, &active) in input.iter().enumerate() {
            if !active {
                continue;
            }
            let cells = &self.cells[row * self.size..(row + 1) * self.size];
            for (o, &c) in out.iter_mut().zip(cells.iter()) {
                *o += u32::from(c);
            }
        }
        out
    }

    /// The analog read with multiplicative cell noise: each programmed cell contributes
    /// `1 + ε` instead of exactly 1, with `ε` drawn by the caller-provided closure (the
    /// RTN model of §VI.D); the result is digitized by rounding (the ADC).
    pub fn dot_columns_noisy<F: FnMut() -> f64>(&self, input: &[bool], mut noise: F) -> Vec<u32> {
        assert_eq!(
            input.len(),
            self.size,
            "crossbar input must have one bit per wordline"
        );
        let mut analog = vec![0.0f64; self.size];
        for (row, &active) in input.iter().enumerate() {
            if !active {
                continue;
            }
            let cells = &self.cells[row * self.size..(row + 1) * self.size];
            for (a, &c) in analog.iter_mut().zip(cells.iter()) {
                if c {
                    *a += 1.0 + noise();
                }
            }
        }
        analog.iter().map(|&a| a.max(0.0).round() as u32).collect()
    }
}

/// The bit-sliced fixed-point MVM engine of Fig. 2: an `NM`-bit unsigned matrix mapped
/// onto `NM` single-bit crossbars, multiplied by an `Nv`-bit unsigned vector streamed
/// one bit per cycle.
#[derive(Debug, Clone)]
pub struct FixedPointMvm {
    size: usize,
    matrix_bits: u32,
    crossbars: Vec<BitCrossbar>,
}

impl FixedPointMvm {
    /// Maps a row-major unsigned matrix (`size × size`, entries `< 2^matrix_bits`) onto
    /// `matrix_bits` crossbars.
    ///
    /// Physically the element `a_ij` sits at wordline `j` / bitline `i` (the crossbar
    /// holds the transpose), so that driving the wordlines with `x` accumulates
    /// `y_i = Σ_j a_ij · x_j` on bitline `i`; [`multiply`](Self::multiply) therefore
    /// computes the ordinary product `M · x`.
    ///
    /// # Panics
    /// Panics if any entry needs more than `matrix_bits` bits.
    pub fn new(matrix: &[u64], size: usize, matrix_bits: u32) -> Self {
        assert!(
            (1..=63).contains(&matrix_bits),
            "matrix bits must be in 1..=63"
        );
        assert_eq!(matrix.len(), size * size, "matrix must be size²");
        for &m in matrix {
            assert!(
                matrix_bits == 63 || m < (1u64 << matrix_bits),
                "matrix entry {m} does not fit in {matrix_bits} bits"
            );
        }
        // Store the transpose: cell (wordline j, bitline i) holds a_ij.
        let mut transposed = vec![0u64; size * size];
        for i in 0..size {
            for j in 0..size {
                transposed[j * size + i] = matrix[i * size + j];
            }
        }
        let crossbars = (0..matrix_bits)
            .map(|bit| BitCrossbar::from_bit_slice(&transposed, size, bit))
            .collect();
        FixedPointMvm {
            size,
            matrix_bits,
            crossbars,
        }
    }

    /// Crossbars used by this engine (= number of matrix bit-slices).
    pub fn num_crossbars(&self) -> usize {
        self.crossbars.len()
    }

    /// The crossbars themselves (bit 0 first).
    pub fn crossbars(&self) -> &[BitCrossbar] {
        &self.crossbars
    }

    /// Processing cycles for a `vector_bits`-bit input under the pipelined input/reduce
    /// scheme: `C_int = N_v + (N_M − 1)` (§III.A).
    pub fn cycles(&self, vector_bits: u32) -> u64 {
        vector_bits as u64 + self.matrix_bits as u64 - 1
    }

    /// Computes `Mᵀ… no — M · x` for the unsigned vector `x` (entries `< 2^vector_bits`)
    /// by streaming vector bits MSB-first and shift-and-adding the per-crossbar partial
    /// sums, exactly as in Fig. 2.  The result is exact.
    ///
    /// # Panics
    /// Panics if `x.len() != size` or an entry does not fit in `vector_bits` bits.
    pub fn multiply(&self, x: &[u64], vector_bits: u32) -> Vec<u128> {
        assert_eq!(x.len(), self.size, "vector length must match crossbar size");
        for &v in x {
            assert!(
                vector_bits >= 64 || v < (1u64 << vector_bits),
                "vector entry {v} does not fit in {vector_bits} bits"
            );
        }
        // Per-crossbar running sums S (one per output column), as in Fig. 2.
        let mut per_xbar: Vec<Vec<u128>> = vec![vec![0u128; self.size]; self.crossbars.len()];
        let mut input = vec![false; self.size];
        for bit in (0..vector_bits).rev() {
            for (ii, &v) in x.iter().enumerate() {
                input[ii] = (v >> bit) & 1 == 1;
            }
            for (xb, sums) in self.crossbars.iter().zip(per_xbar.iter_mut()) {
                let partial = xb.dot_columns(&input);
                for (s, &p) in sums.iter_mut().zip(partial.iter()) {
                    // Shift the running sum (weight of the previous, more significant,
                    // input bit) and add the new partial result.
                    *s = (*s << 1) + p as u128;
                }
            }
        }
        // Combine the crossbar results with their bit-slice weights (cycles C5..C7 in
        // Fig. 2: shift-and-add across crossbars).
        let mut out = vec![0u128; self.size];
        for (bit, sums) in per_xbar.iter().enumerate() {
            for (o, &s) in out.iter_mut().zip(sums.iter()) {
                *o += s << bit;
            }
        }
        out
    }
}

/// Reference (exact, non-bit-sliced) unsigned MVM used to cross-check the pipeline.
pub fn reference_mvm(matrix: &[u64], size: usize, x: &[u64]) -> Vec<u128> {
    let mut out = vec![0u128; size];
    for row in 0..size {
        let mut acc = 0u128;
        for col in 0..size {
            acc += matrix[row * size + col] as u128 * x[col] as u128;
        }
        out[row] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The worked example of Eq. 1 / Fig. 2: the paper multiplies the *transpose* of the
    /// printed matrix by [6, 12, 6, 13], so the logical matrix being applied (row-major)
    /// is the printed one with rows and columns swapped; the expected product is
    /// [368, 354, 207, 387].
    fn fig2_matrix() -> Vec<u64> {
        // Columns of the printed matrix become rows of the logical matrix.
        vec![
            0, 11, 9, 14, //
            13, 14, 5, 6, //
            7, 3, 2, 9, //
            11, 8, 5, 15,
        ]
    }

    #[test]
    fn fig2_example_reproduces_published_result() {
        let m = fig2_matrix();
        let x = vec![6u64, 12, 6, 13];
        let engine = FixedPointMvm::new(&m, 4, 4);
        let y = engine.multiply(&x, 4);
        assert_eq!(y, vec![368, 354, 207, 387]);
        // Four 1-bit crossbars, C_int = 4 + (4 - 1) = 7 cycles — the C1..C7 of Fig. 2.
        assert_eq!(engine.num_crossbars(), 4);
        assert_eq!(engine.cycles(4), 7);
    }

    #[test]
    fn bit_slices_reassemble_the_matrix_transposed() {
        // The crossbars hold the transpose (a_ij at wordline j / bitline i).
        let m = fig2_matrix();
        let engine = FixedPointMvm::new(&m, 4, 4);
        for row in 0..4 {
            for col in 0..4 {
                let mut value = 0u64;
                for (bit, xb) in engine.crossbars().iter().enumerate() {
                    value |= (xb.get(col, row) as u64) << bit;
                }
                assert_eq!(value, m[row * 4 + col]);
            }
        }
    }

    #[test]
    fn dot_columns_counts_active_cells() {
        let mut xb = BitCrossbar::new(3);
        xb.set(0, 0, true);
        xb.set(1, 0, true);
        xb.set(2, 2, true);
        assert_eq!(xb.ones(), 3);
        let out = xb.dot_columns(&[true, true, false]);
        assert_eq!(out, vec![2, 0, 0]);
        let out = xb.dot_columns(&[true, true, true]);
        assert_eq!(out, vec![2, 0, 1]);
    }

    #[test]
    fn noisy_dot_columns_with_zero_noise_matches_clean() {
        let m = fig2_matrix();
        let xb = BitCrossbar::from_bit_slice(&m, 4, 3);
        let input = [true, false, true, true];
        assert_eq!(xb.dot_columns(&input), xb.dot_columns_noisy(&input, || 0.0));
    }

    #[test]
    fn noisy_dot_columns_never_go_negative() {
        let mut xb = BitCrossbar::new(2);
        xb.set(0, 0, true);
        let out = xb.dot_columns_noisy(&[true, true], || -3.0);
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn cycle_count_matches_section_iii_formula() {
        let m = vec![1u64; 16];
        let engine = FixedPointMvm::new(&m, 4, 1);
        assert_eq!(engine.cycles(1), 1);
        let engine = FixedPointMvm::new(&[255u64; 16], 4, 8);
        assert_eq!(engine.cycles(16), 16 + 8 - 1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_matrix_entry_is_rejected() {
        let _ = FixedPointMvm::new(&[16, 0, 0, 0], 2, 4);
    }

    proptest! {
        #[test]
        fn pipeline_matches_reference_for_random_inputs(
            m in proptest::collection::vec(0u64..256, 16),
            x in proptest::collection::vec(0u64..4096, 4),
            extra_vector_bits in 0u32..4,
        ) {
            let engine = FixedPointMvm::new(&m, 4, 8);
            let y = engine.multiply(&x, 12 + extra_vector_bits);
            prop_assert_eq!(y, reference_mvm(&m, 4, &x));
        }

        #[test]
        fn pipeline_matches_reference_for_larger_crossbars(
            m in proptest::collection::vec(0u64..16, 64),
            x in proptest::collection::vec(0u64..16, 8),
        ) {
            let engine = FixedPointMvm::new(&m, 8, 4);
            let y = engine.multiply(&x, 4);
            prop_assert_eq!(y, reference_mvm(&m, 8, &x));
        }
    }
}
