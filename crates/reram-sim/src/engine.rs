//! The floating-point processing engine of Fig. 6(b)/(c): one ReFloat matrix block
//! multiplied by one vector segment through the bit-exact integer crossbar pipeline.
//!
//! The engine demonstrates (and lets the tests verify) that the functional ReFloat
//! operator in `refloat-core` computes exactly what the hardware would: encoded matrix
//! fractions and exponent paddings become an unsigned fixed-point matrix, the encoded
//! vector segment becomes an unsigned fixed-point input, signs are handled by two
//! crossbar clusters per operand (four partial products combined by subtraction, step 5
//! in Fig. 6b), and the final result is scaled by `2^{eb + ebv}` (steps 7–9).

use refloat_core::block::ReFloatBlock;
use refloat_core::format::ReFloatConfig;
use refloat_core::scalar::{decompose, pow2};
use refloat_core::vector::VectorConverter;

use crate::cost;
use crate::xbar::FixedPointMvm;

/// A processing engine configured for one ReFloat format.
#[derive(Debug, Clone)]
pub struct ProcessingEngine {
    config: ReFloatConfig,
}

/// The result of one block × segment multiplication.
#[derive(Debug, Clone)]
pub struct EngineOutput {
    /// The output vector segment (length `2^b`) in double precision — what the engine
    /// hands to the MAC units for accumulation across block columns (Eq. 9).
    pub segment: Vec<f64>,
    /// Crossbars occupied by the block (both sign polarities).
    pub crossbars_used: u32,
    /// Pipeline cycles consumed (Eq. 3).
    pub cycles: u64,
}

impl ProcessingEngine {
    /// Creates an engine for the given format.
    pub fn new(config: ReFloatConfig) -> Self {
        ProcessingEngine { config }
    }

    /// The format configuration.
    pub fn config(&self) -> &ReFloatConfig {
        &self.config
    }

    /// Multiplies one encoded block by one raw vector segment (length `2^b`; shorter
    /// tail segments are zero-padded), returning the FP64 output segment plus the
    /// hardware cost of the operation.
    ///
    /// # Panics
    /// Panics if the segment is longer than the block size.
    pub fn block_mvm(&self, block: &ReFloatBlock, x_segment: &[f64]) -> EngineOutput {
        let bs = self.config.block_size();
        assert!(
            x_segment.len() <= bs,
            "segment length {} exceeds block size {bs}",
            x_segment.len()
        );

        // --- Vector conversion (Fig. 6d): per-segment base + (ev, fv) encoding.
        let mut converter = VectorConverter::new(self.config);
        let mut padded = vec![0.0; bs];
        padded[..x_segment.len()].copy_from_slice(x_segment);
        let quantized = converter.convert(&padded);
        let ebv = converter.last_bases()[0];

        // --- Fixed-point encodings.
        let max_off_m = self.config.max_offset();
        let max_off_v = self.config.max_offset_vector();
        // Matrix integer = (2^f + code) << (offset + max_off); value = int · 2^(eb - f - max_off).
        let m_scale_exp = block.eb - self.config.f as i32 - max_off_m;
        // Vector integer derived from the quantized value; value = int · 2^(ebv - fv - max_off_v).
        let v_scale_exp = ebv - self.config.fv as i32 - max_off_v;

        let mut m_pos = vec![0u64; bs * bs];
        let mut m_neg = vec![0u64; bs * bs];
        for (k, (&ii, &jj)) in block.rows.iter().zip(block.cols.iter()).enumerate() {
            if block.decoded[k] == 0.0 {
                continue;
            }
            let mantissa = (1u64 << self.config.f) + block.fraction_codes[k] as u64;
            let shift = (block.offsets[k] as i32 + max_off_m) as u32;
            let int = mantissa << shift;
            let idx = ii as usize * bs + jj as usize;
            if block.signs[k] {
                m_neg[idx] = int;
            } else {
                m_pos[idx] = int;
            }
        }
        let mut v_pos = vec![0u64; bs];
        let mut v_neg = vec![0u64; bs];
        for (slot, &q) in quantized.iter().enumerate() {
            let Some(d) = decompose(q) else { continue };
            // The quantized value is exactly (1.frac_fv) · 2^(ebv + off) by construction.
            let offset = d.exponent - ebv;
            debug_assert!(offset.abs() <= max_off_v, "vector offset out of window");
            let mantissa = (d.fraction * (1u64 << self.config.fv) as f64).round() as u64;
            let int = mantissa << (offset + max_off_v) as u32;
            if d.negative {
                v_neg[slot] = int;
            } else {
                v_pos[slot] = int;
            }
        }

        // --- Four sign-split fixed-point MVMs (two crossbar clusters × two input signs).
        let matrix_bits = 1 + self.config.f + 2 * max_off_m as u32;
        let vector_bits = 1 + self.config.fv + 2 * max_off_v as u32;
        let pos_engine = FixedPointMvm::new(&m_pos, bs, matrix_bits);
        let neg_engine = FixedPointMvm::new(&m_neg, bs, matrix_bits);
        let pp = pos_engine.multiply(&v_pos, vector_bits);
        let pn = pos_engine.multiply(&v_neg, vector_bits);
        let np = neg_engine.multiply(&v_pos, vector_bits);
        let nn = neg_engine.multiply(&v_neg, vector_bits);

        // --- Combine signs and scale back to floating point (steps 5–9 of Fig. 6b).
        let scale = pow2(m_scale_exp + v_scale_exp);
        let segment: Vec<f64> = (0..bs)
            .map(|i| {
                let positive = pp[i] + nn[i];
                let negative = pn[i] + np[i];
                let signed = positive as i128 - negative as i128;
                signed as f64 * scale
            })
            .collect();

        EngineOutput {
            segment,
            crossbars_used: 2 * cost::crossbars_per_cluster(self.config.e, self.config.f),
            cycles: cost::cycle_count_eq3(
                self.config.e,
                self.config.f,
                self.config.ev,
                self.config.fv,
            ),
        }
    }

    /// The functional (pure f64) reference for [`block_mvm`](Self::block_mvm): the same
    /// quantized block and quantized segment multiplied in double precision.
    pub fn reference_block_mvm(&self, block: &ReFloatBlock, x_segment: &[f64]) -> Vec<f64> {
        let bs = self.config.block_size();
        let mut converter = VectorConverter::new(self.config);
        let mut padded = vec![0.0; bs];
        padded[..x_segment.len()].copy_from_slice(x_segment);
        let quantized = converter.convert(&padded);
        let mut out = vec![0.0; bs];
        for (ii, jj, v) in block.iter_decoded() {
            out[ii as usize] += v * quantized[jj as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use refloat_sparse::blocked::Block;

    fn encode_block(vals: &[(u16, u16, f64)], config: &ReFloatConfig) -> ReFloatBlock {
        let block = Block {
            block_row: 0,
            block_col: 0,
            rows: vals.iter().map(|v| v.0).collect(),
            cols: vals.iter().map(|v| v.1).collect(),
            vals: vals.iter().map(|v| v.2).collect(),
        };
        ReFloatBlock::encode(&block, config)
    }

    #[test]
    fn engine_matches_functional_reference_on_a_small_block() {
        let config = ReFloatConfig::new(3, 3, 3, 3, 8);
        let entries = vec![
            (0u16, 0u16, 1.5),
            (0, 1, -2.25),
            (1, 1, 0.75),
            (2, 5, 3.0),
            (7, 7, -0.5),
            (4, 2, 1.0e-1),
        ];
        let block = encode_block(&entries, &config);
        let engine = ProcessingEngine::new(config);
        let x: Vec<f64> = (0..8).map(|i| 0.3 * (i as f64) - 1.0).collect();
        let hw = engine.block_mvm(&block, &x);
        let reference = engine.reference_block_mvm(&block, &x);
        for (h, r) in hw.segment.iter().zip(reference.iter()) {
            assert!(
                (h - r).abs() <= 1e-12 * r.abs().max(1e-30),
                "hw {h} vs ref {r}"
            );
        }
        assert_eq!(hw.crossbars_used, 2 * (8 + 3 + 1));
        assert_eq!(hw.cycles, (8 + 8 + 1) + (8 + 3 + 1) - 1);
    }

    #[test]
    fn engine_handles_tiny_value_blocks_via_the_exponent_base() {
        // crystm-like magnitudes: the integer pipeline never sees the 2^-40 scale, it is
        // carried entirely by eb/ebv.
        let config = ReFloatConfig::new(2, 3, 3, 3, 8);
        let entries = vec![
            (0u16, 0u16, 3.0e-12),
            (1, 1, -1.2e-12),
            (2, 3, 5.0e-13),
            (3, 0, 2.2e-12),
        ];
        let block = encode_block(&entries, &config);
        let engine = ProcessingEngine::new(config);
        let x = vec![1.0, -2.0, 0.5, 4.0];
        let hw = engine.block_mvm(&block, &x);
        let reference = engine.reference_block_mvm(&block, &x);
        for (h, r) in hw.segment.iter().zip(reference.iter()) {
            assert!(
                (h - r).abs() <= 1e-12 * r.abs().max(1e-300),
                "hw {h} vs ref {r}"
            );
        }
    }

    #[test]
    fn short_tail_segments_are_zero_padded() {
        let config = ReFloatConfig::new(2, 3, 4, 3, 8);
        let block = encode_block(&[(0, 0, 2.0), (3, 3, 4.0)], &config);
        let engine = ProcessingEngine::new(config);
        let hw = engine.block_mvm(&block, &[1.0, 1.0]); // only 2 of 4 entries provided
        assert_eq!(hw.segment.len(), 4);
        assert_eq!(hw.segment[0], 2.0);
        assert_eq!(hw.segment[3], 0.0); // x[3] padded to zero
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn hardware_pipeline_matches_functional_model(
            entries in proptest::collection::vec(
                (0u16..8, 0u16..8, -10.0f64..10.0), 1..24),
            x in proptest::collection::vec(-5.0f64..5.0, 8),
            f_bits in 1u32..6,
            fv_bits in 2u32..10,
        ) {
            let config = ReFloatConfig::new(3, 3, f_bits, 3, fv_bits);
            // Deduplicate positions (last write wins) to keep the block well formed.
            let mut grid = std::collections::BTreeMap::new();
            for (r, c, v) in &entries {
                grid.insert((*r, *c), *v);
            }
            let list: Vec<(u16, u16, f64)> = grid.into_iter()
                .map(|((r, c), v)| (r, c, v))
                .collect();
            let block = encode_block(&list, &config);
            let engine = ProcessingEngine::new(config);
            let hw = engine.block_mvm(&block, &x);
            let reference = engine.reference_block_mvm(&block, &x);
            for (h, r) in hw.segment.iter().zip(reference.iter()) {
                prop_assert!((h - r).abs() <= 1e-10 * r.abs().max(1e-12),
                    "hw {h} vs functional {r}");
            }
        }
    }
}
