//! Multi-chip accelerator model: block-row shards spread across chips, parallel shard
//! execution, and the inter-chip gather that assembles each SpMV result.
//!
//! A single Table IV chip holds a bounded number of crossbar clusters; a matrix whose
//! block count exceeds that budget streams through the chip in multiple re-programming
//! rounds per SpMV (§VI.B).  Splitting the operator across `c` chips divides each
//! chip's cluster requirement by ~`c` (shards are nnz-balanced on block-row
//! boundaries), so a matrix that forced, say, 8 streaming rounds on one chip may fit
//! entirely in 8 chips — trading round-by-round cell re-writes for a per-SpMV
//! inter-chip reduction.
//!
//! The time model follows the distributed in-memory-computing recipe (Vo et al.):
//!
//! * chips execute their shards **in parallel**, so the compute phase of one SpMV costs
//!   the *makespan* — the slowest shard, not the sum;
//! * each SpMV ends with a **fixed-order gather**: every chip ships its disjoint output
//!   band (8 bytes/row) to the host over a serialized link.  Because the bands are
//!   disjoint, the gather is a copy, not a floating-point reduction — the functional
//!   results stay bitwise identical to a single chip (see
//!   `refloat_core::sharded`).

use crate::accelerator::{AcceleratorConfig, SolverKind};
use crate::fault::{ChipFaultState, DeviceHealth, FaultModelConfig, HealthSummary};

/// A pool of identical chips plus the host link that gathers per-SpMV results.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiChipConfig {
    /// Number of chips the operator is sharded across.
    pub chips: usize,
    /// The per-chip organization (crossbars, cycle time, write latency).
    pub chip: AcceleratorConfig,
    /// One-time latency per chip→host transfer, seconds (PCIe-class hop).
    pub link_latency_s: f64,
    /// Host link bandwidth in bytes/second; the per-SpMV gather of all output bands is
    /// serialized over this link.
    pub link_bytes_per_s: f64,
}

impl MultiChipConfig {
    /// A homogeneous pool of `chips` copies of `chip`, with a PCIe-4-class host link
    /// (1 µs hop latency, 16 GB/s).
    pub fn homogeneous(chips: usize, chip: AcceleratorConfig) -> Self {
        assert!(chips >= 1, "a multi-chip pool needs at least one chip");
        MultiChipConfig {
            chips,
            chip,
            link_latency_s: 1e-6,
            link_bytes_per_s: 16e9,
        }
    }

    /// Builder: override the host-link parameters.
    pub fn with_link(mut self, latency_s: f64, bytes_per_s: f64) -> Self {
        self.link_latency_s = latency_s;
        self.link_bytes_per_s = bytes_per_s;
        self
    }
}

/// How one sharded SpMV breaks down on the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedSpmvBreakdown {
    /// Per-chip SpMV seconds (compute + streaming writes), one entry per shard.
    pub per_chip_s: Vec<f64>,
    /// The slowest chip's SpMV seconds — the parallel-execution makespan.
    pub makespan_s: f64,
    /// Seconds gathering the disjoint output bands to the host (0 for one chip: the
    /// result is already where a single-chip SpMV would leave it).
    pub reduction_s: f64,
    /// Makespan + reduction: the wall time of one sharded SpMV.
    pub spmv_total_s: f64,
    /// The worst chip's streaming rounds (1 when every shard fits its chip).
    pub max_rounds: u64,
}

/// A full sharded solve on the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiChipSolveBreakdown {
    /// The per-SpMV breakdown the solve repeats.
    pub spmv: ShardedSpmvBreakdown,
    /// Seconds programming the shards onto the chips (all chips write in parallel).
    pub program_s: f64,
    /// Total seconds for the solve (programming + iterations).
    pub solver_total_s: f64,
    /// Iterations of the solve.
    pub iterations: u64,
}

/// The multi-chip accelerator: per-shard capacity arithmetic and the sharded
/// SpMV / solver time model.
#[derive(Debug, Clone)]
pub struct MultiChipAccelerator {
    config: MultiChipConfig,
    /// Per-chip persistent fault state, present when a fault model is attached.
    faults: Vec<ChipFaultState>,
}

impl MultiChipAccelerator {
    /// Builds the accelerator for a pool configuration.
    pub fn new(config: MultiChipConfig) -> Self {
        assert!(
            config.chips >= 1,
            "a multi-chip pool needs at least one chip"
        );
        MultiChipAccelerator {
            config,
            faults: Vec::new(),
        }
    }

    /// Attaches a persistent fault model: every chip gets its own seeded
    /// [`ChipFaultState`] over `grid × grid` crossbars, and shard programming starts
    /// accumulating wear via [`record_programming`](Self::record_programming).
    pub fn with_fault_model(mut self, model: FaultModelConfig, grid: usize) -> Self {
        self.faults = (0..self.config.chips)
            .map(|chip| ChipFaultState::new(model, chip, grid))
            .collect();
        self
    }

    /// Per-chip fault state (empty without an attached fault model).
    pub fn fault_states(&self) -> &[ChipFaultState] {
        &self.faults
    }

    /// Records one shard (re)programming: chip `i` wears by `shard_blocks[i]`
    /// crossbar writes and its fault-model age advances.  No-op without a fault model.
    pub fn record_programming(&mut self, shard_blocks: &[u64]) {
        for (chip, &blocks) in self.faults.iter_mut().zip(shard_blocks.iter()) {
            chip.record_programming(blocks);
        }
    }

    /// Health summaries for every chip of the pool, in chip order.  Empty without an
    /// attached fault model (a pool with no fault model has nothing to report).
    pub fn health_summaries(&self) -> Vec<HealthSummary> {
        self.faults.iter().map(DeviceHealth::health).collect()
    }

    /// The pool configuration.
    pub fn config(&self) -> &MultiChipConfig {
        &self.config
    }

    /// Crossbar clusters one chip holds simultaneously.
    pub fn chip_capacity(&self) -> u64 {
        self.config.chip.clusters_available()
    }

    /// One sharded SpMV: parallel per-chip execution + the host gather.
    ///
    /// `shard_blocks[i]` is the non-empty block count of chip `i`'s shard and
    /// `shard_rows[i]` the rows of its output band.  Fewer shards than chips is fine
    /// (the partitioner returns fewer ranges for small matrices); more is not.
    ///
    /// # Panics
    /// Panics if there are more shards than chips or the two slices disagree.
    pub fn spmv_time(&self, shard_blocks: &[u64], shard_rows: &[u64]) -> ShardedSpmvBreakdown {
        assert_eq!(
            shard_blocks.len(),
            shard_rows.len(),
            "per-shard blocks and rows must align"
        );
        assert!(
            shard_blocks.len() <= self.config.chips,
            "{} shards exceed the {}-chip pool",
            shard_blocks.len(),
            self.config.chips
        );
        assert!(!shard_blocks.is_empty(), "at least one shard is required");
        let per_chip_s: Vec<f64> = shard_blocks
            .iter()
            .map(|&blocks| {
                let (compute, write) = self.config.chip.spmv_time_s(blocks);
                compute + write
            })
            .collect();
        let makespan_s = per_chip_s.iter().cloned().fold(0.0, f64::max);
        let reduction_s = if shard_blocks.len() > 1 {
            let bytes: u64 = shard_rows.iter().map(|&rows| rows * 8).sum();
            shard_blocks.len() as f64 * self.config.link_latency_s
                + bytes as f64 / self.config.link_bytes_per_s
        } else {
            0.0
        };
        let max_rounds = shard_blocks
            .iter()
            .map(|&blocks| self.config.chip.rounds_per_spmv(blocks))
            .max()
            .expect("non-empty shards");
        ShardedSpmvBreakdown {
            makespan_s,
            reduction_s,
            spmv_total_s: makespan_s + reduction_s,
            per_chip_s,
            max_rounds,
        }
    }

    /// Seconds programming all shards onto their chips: chips write in parallel, so the
    /// pool pays one cluster-write time regardless of chip count.
    pub fn program_time_s(&self) -> f64 {
        self.config.chip.cluster_write_time_s()
    }

    /// A full sharded solve: `iterations` iterations of `solver`, each SpMV paying the
    /// makespan + gather of [`spmv_time`](Self::spmv_time), plus the per-iteration
    /// digital overhead and the one-time shard programming.
    pub fn solver_time(
        &self,
        shard_blocks: &[u64],
        shard_rows: &[u64],
        iterations: u64,
        solver: SolverKind,
    ) -> MultiChipSolveBreakdown {
        let spmv = self.spmv_time(shard_blocks, shard_rows);
        let spmv_count = iterations * solver.spmv_per_iteration();
        let program_s = self.program_time_s();
        let solver_total_s = program_s
            + spmv_count as f64 * spmv.spmv_total_s
            + iterations as f64 * self.config.chip.iteration_overhead_ns * 1e-9;
        MultiChipSolveBreakdown {
            spmv,
            program_s,
            solver_total_s,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_core::format::ReFloatConfig;

    /// A deliberately small chip (1024 crossbars) so modest block counts overflow it.
    fn small_chip() -> AcceleratorConfig {
        let mut chip = AcceleratorConfig::refloat(&ReFloatConfig::paper_default());
        chip.total_crossbars = 1 << 10;
        chip
    }

    fn even_shards(total_blocks: u64, shards: usize) -> (Vec<u64>, Vec<u64>) {
        let blocks: Vec<u64> = (0..shards)
            .map(|i| {
                total_blocks / shards as u64 + u64::from((i as u64) < total_blocks % shards as u64)
            })
            .collect();
        let rows = vec![1024u64; shards];
        (blocks, rows)
    }

    #[test]
    fn one_chip_pays_no_reduction_and_matches_the_single_chip_model() {
        let chip = small_chip();
        let pool = MultiChipAccelerator::new(MultiChipConfig::homogeneous(1, chip.clone()));
        let breakdown = pool.spmv_time(&[5_000], &[4_096]);
        assert_eq!(breakdown.reduction_s, 0.0);
        let (compute, write) = chip.spmv_time_s(5_000);
        assert!((breakdown.spmv_total_s - (compute + write)).abs() < 1e-15);
    }

    #[test]
    fn makespan_is_the_slowest_shard() {
        let pool = MultiChipAccelerator::new(MultiChipConfig::homogeneous(4, small_chip()));
        let breakdown = pool.spmv_time(&[100, 5_000, 100, 100], &[256; 4]);
        assert_eq!(breakdown.per_chip_s.len(), 4);
        let slowest = breakdown.per_chip_s.iter().cloned().fold(0.0, f64::max);
        assert_eq!(breakdown.makespan_s, slowest);
        assert!(breakdown.reduction_s > 0.0);
        assert!(breakdown.spmv_total_s > breakdown.makespan_s);
    }

    #[test]
    fn sharding_an_oversized_matrix_beats_streaming_through_one_chip() {
        // 8x one small chip's cluster budget: one chip streams in 8 rounds; 4 chips
        // hold 2 rounds each and win despite the gather overhead.
        let chip = small_chip();
        let capacity = chip.clusters_available();
        let total_blocks = 8 * capacity;
        let single = MultiChipAccelerator::new(MultiChipConfig::homogeneous(1, chip.clone()));
        let quad = MultiChipAccelerator::new(MultiChipConfig::homogeneous(4, chip));
        let (blocks1, rows1) = even_shards(total_blocks, 1);
        let (blocks4, rows4) = even_shards(total_blocks, 4);
        let t1 = single
            .solver_time(&blocks1, &rows1, 100, SolverKind::Cg)
            .solver_total_s;
        let t4 = quad
            .solver_time(&blocks4, &rows4, 100, SolverKind::Cg)
            .solver_total_s;
        let speedup = t1 / t4;
        assert!(
            speedup > 1.5,
            "4-chip speedup should exceed 1.5x, got {speedup:.2}x ({t1:.3e}s vs {t4:.3e}s)"
        );
    }

    #[test]
    fn reduction_cost_grows_with_chips_and_rows() {
        let pool2 = MultiChipAccelerator::new(MultiChipConfig::homogeneous(2, small_chip()));
        let pool8 = MultiChipAccelerator::new(MultiChipConfig::homogeneous(8, small_chip()));
        let r2 = pool2.spmv_time(&[10, 10], &[1 << 20, 1 << 20]).reduction_s;
        let r8 = pool8.spmv_time(&[10; 8], &[1 << 20; 8]).reduction_s;
        assert!(r8 > r2);
        // Bandwidth term dominates at 2^20 rows: 8 MiB over 16 GB/s >> hop latency.
        assert!(r2 > (2u64 << 20) as f64 * 8.0 / 16e9 * 0.9);
    }

    #[test]
    fn solver_time_charges_programming_once() {
        let pool = MultiChipAccelerator::new(MultiChipConfig::homogeneous(4, small_chip()));
        let (blocks, rows) = even_shards(400, 4);
        let one = pool.solver_time(&blocks, &rows, 1, SolverKind::Cg);
        let hundred = pool.solver_time(&blocks, &rows, 100, SolverKind::Cg);
        let per_iter = one.solver_total_s - one.program_s;
        assert!((hundred.solver_total_s - (hundred.program_s + 100.0 * per_iter)).abs() < 1e-12);
        assert_eq!(one.program_s, pool.program_time_s());
    }

    #[test]
    fn pool_health_tracks_per_chip_wear_independently() {
        let mut pool = MultiChipAccelerator::new(MultiChipConfig::homogeneous(3, small_chip()))
            .with_fault_model(FaultModelConfig::realistic(17), 16);
        assert_eq!(pool.health_summaries().len(), 3);
        assert!(pool.health_summaries().iter().all(|h| h.programmings == 0));
        // Uneven shard programming wears chips unevenly.
        pool.record_programming(&[100, 10, 0]);
        pool.record_programming(&[100, 10, 0]);
        let health = pool.health_summaries();
        assert_eq!(health[0].wear_writes, 200);
        assert_eq!(health[1].wear_writes, 20);
        assert_eq!(health[2].wear_writes, 0);
        assert!(health.iter().all(|h| h.programmings == 2));
        assert!(health[0].drift_sigma_effective > 0.0);
        // A pool without a fault model reports nothing.
        let plain = MultiChipAccelerator::new(MultiChipConfig::homogeneous(2, small_chip()));
        assert!(plain.health_summaries().is_empty());
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn more_shards_than_chips_is_rejected() {
        let pool = MultiChipAccelerator::new(MultiChipConfig::homogeneous(2, small_chip()));
        let _ = pool.spmv_time(&[1, 1, 1], &[1, 1, 1]);
    }
}
