//! Closed-form hardware cost models: crossbar count (Eq. 2) and cycle count (Eq. 3).

/// Eq. 2: the number of crossbars needed for one floating-point MVM on a matrix block
/// with `e_m` exponent bits and `f_m` fraction bits:
/// `C = 4 · (2^{e_m} + f_m + 1)`, where the factor 4 accounts for the sign handling of
/// the matrix block and of the vector segment.
pub fn crossbar_count_eq2(e_m: u32, f_m: u32) -> u64 {
    4 * ((1u64 << e_m) + f_m as u64 + 1)
}

/// Eq. 3: the number of pipeline cycles for one floating-point MVM with a
/// `(e_v, f_v)`-bit vector segment and a `(e_m, f_m)`-bit matrix block:
/// `T = (2^{e_v} + f_v + 1) + (2^{e_m} + f_m + 1) − 1`.
pub fn cycle_count_eq3(e_m: u32, f_m: u32, e_v: u32, f_v: u32) -> u64 {
    ((1u64 << e_v) + f_v as u64 + 1) + ((1u64 << e_m) + f_m as u64 + 1) - 1
}

/// Extra pipeline cycles per block-MVM when the ABFT checksum row is enabled: the
/// checksum row rides in the same crossbar as its block, so its dot product streams
/// through the existing pipeline and costs one additional accumulation cycle (the
/// host-side comparison of `Σy` against the checksum prediction is free — it folds
/// into the reduction the host already performs per SpMV).
pub const ABFT_CHECK_CYCLES_PER_BLOCK: u64 = 1;

/// The per-cluster crossbar count used by the §VI.B capacity arithmetic:
/// `2^e` exponent paddings + `f` fraction bit-slices + 1 leading-one slice.
///
/// **Note the off-by-one against the paper's prose:** for the Feinberg mapping
/// (e = 6, f = 52) this formula gives `2^6 + 52 + 1 = 117`, while §VI.B quotes **118**
/// (the extra crossbar is the sign slice of the full-precision mapping).  Consumers
/// split accordingly: `AcceleratorConfig::feinberg()` hard-codes the quoted 118 so the
/// §VI.B capacity numbers (2221 clusters per chip) reproduce exactly, whereas every
/// ReFloat-format consumer — `AcceleratorConfig::refloat`, the multi-chip capacity
/// arithmetic, and the `refloat_core::autotune` cost model — uses this formula (for the
/// default e = 3, f = 3 it gives the 12 crossbars per cluster the paper also quotes).
pub fn crossbars_per_cluster(e: u32, f: u32) -> u32 {
    (1u32 << e) + f + 1
}

/// The sweep ranges plotted in Fig. 3(a)–(c): cycle count as a function of the vector
/// and matrix exponent bits (a), of the fraction bits (b), and crossbar count as a
/// function of matrix exponent/fraction bits (c).  Returned as `(x, y, value)` triples
/// for the bench harness to print.
pub fn fig3_cycle_surface_exponents(
    fixed_f_m: u32,
    fixed_f_v: u32,
    max_e: u32,
) -> Vec<(u32, u32, u64)> {
    let mut out = Vec::new();
    for e_v in 0..=max_e {
        for e_m in 0..=max_e {
            out.push((e_v, e_m, cycle_count_eq3(e_m, fixed_f_m, e_v, fixed_f_v)));
        }
    }
    out
}

/// Fig. 3(b): cycle count versus fraction bit counts at fixed exponent bits.
pub fn fig3_cycle_surface_fractions(
    fixed_e_m: u32,
    fixed_e_v: u32,
    max_f: u32,
    step: u32,
) -> Vec<(u32, u32, u64)> {
    let mut out = Vec::new();
    let mut f_v = 0;
    while f_v <= max_f {
        let mut f_m = 0;
        while f_m <= max_f {
            out.push((f_v, f_m, cycle_count_eq3(fixed_e_m, f_m, fixed_e_v, f_v)));
            f_m += step;
        }
        f_v += step;
    }
    out
}

/// Fig. 3(c): crossbar count versus matrix exponent and fraction bits.
pub fn fig3_crossbar_surface(max_e: u32, max_f: u32, f_step: u32) -> Vec<(u32, u32, u64)> {
    let mut out = Vec::new();
    for e_m in 0..=max_e {
        let mut f_m = 0;
        while f_m <= max_f {
            out.push((e_m, f_m, crossbar_count_eq2(e_m, f_m)));
            f_m += f_step;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp64_costs_match_the_paper_headline_numbers() {
        // §III.B: "In double-precision floating-point (FP64), one MVM in ReRAM consumes
        // 8404 crossbars and 4201 cycles."
        assert_eq!(crossbar_count_eq2(11, 52), 8404);
        assert_eq!(cycle_count_eq3(11, 52, 11, 52), 4201);
    }

    #[test]
    fn feinberg_and_refloat_cycle_counts_match_section_vib() {
        // Feinberg: 6-bit exponent, 52-bit fraction for both operands -> 233 cycles.
        assert_eq!(cycle_count_eq3(6, 52, 6, 52), 233);
        // ReFloat default (e=3, f=3, ev=3, fv=8) -> 28 cycles.
        assert_eq!(cycle_count_eq3(3, 3, 3, 8), 28);
    }

    #[test]
    fn cluster_crossbar_counts_match_section_vib() {
        // ReFloat default: 2^3 + 3 + 1 = 12 crossbars per cluster (§VI.B).  The Feinberg
        // cluster is quoted as 118 crossbars in §VI.B, which is one more than this
        // formula gives for (e, f) = (6, 52); the accelerator model uses the quoted 118.
        assert_eq!(crossbars_per_cluster(6, 52), 117);
        assert_eq!(crossbars_per_cluster(3, 3), 12);
        // Fig. 4 discussion: ReFloat(2,2,3) needs 2^2 + 3 + 1 = 8 per polarity, 16 with
        // both signs (versus 118 in the full-precision mapping).
        assert_eq!(2 * crossbars_per_cluster(2, 3), 16);
    }

    #[test]
    fn crossbar_count_grows_exponentially_in_exponent_and_linearly_in_fraction() {
        let base = crossbar_count_eq2(4, 20);
        assert_eq!(
            crossbar_count_eq2(5, 20) - crossbar_count_eq2(4, 20),
            4 * 16
        );
        assert_eq!(crossbar_count_eq2(4, 21) - base, 4);
    }

    #[test]
    fn cycle_count_is_symmetric_in_matrix_and_vector_roles() {
        assert_eq!(cycle_count_eq3(3, 8, 5, 2), cycle_count_eq3(5, 2, 3, 8));
    }

    #[test]
    fn fig3_surfaces_have_expected_sizes_and_monotonicity() {
        let a = fig3_cycle_surface_exponents(52, 52, 10);
        assert_eq!(a.len(), 11 * 11);
        let b = fig3_cycle_surface_fractions(6, 6, 60, 10);
        assert_eq!(b.len(), 7 * 7);
        let c = fig3_crossbar_surface(10, 60, 10);
        assert_eq!(c.len(), 11 * 7);
        // Monotone: more bits never cost fewer cycles/crossbars.
        assert!(a.windows(2).all(|w| w[0].0 != w[1].0 || w[0].2 <= w[1].2));
        assert!(c.windows(2).all(|w| w[0].0 != w[1].0 || w[0].2 <= w[1].2));
    }
}
