//! ReRAM crossbar accelerator simulator for the ReFloat reproduction.
//!
//! The paper evaluates ReFloat on a simulated crossbar accelerator (Table IV); this
//! crate rebuilds that simulation infrastructure:
//!
//! * [`xbar`] — single-bit crossbars and the bit-sliced fixed-point MVM pipeline of
//!   Fig. 2 (bit-exact, used to validate the functional ReFloat operator),
//! * [`engine`] — the floating-point processing engine of Fig. 6(b/c): one ReFloat
//!   block × one vector segment through the integer pipeline, scaled by `2^{eb+ebv}`,
//! * [`cost`] — the closed-form crossbar-count (Eq. 2) and cycle-count (Eq. 3) models,
//! * [`accelerator`] — the chip-level organization (banks / clusters / crossbars of
//!   Table IV), the cluster-requirement arithmetic of §VI.B and the SpMV / solver-time
//!   model used to regenerate Fig. 8,
//! * [`multichip`] — a pool of chips executing block-row shards in parallel
//!   (makespan = slowest shard) with a fixed-order host gather per SpMV — the
//!   scale-out path for matrices exceeding one chip's crossbar budget,
//! * [`gpu`] — a roofline + kernel-launch latency model standing in for the V100 +
//!   cuSPARSE baseline (see DESIGN.md §3 for the substitution argument),
//! * [`events`] — cycle-event hooks ([`CycleHook`]) through which a host observes the
//!   per-phase attribution of simulated cycles (program / compute / stream-write /
//!   reduction / host-fp64) without the simulator depending on a telemetry backend,
//! * [`noise`] — the random-telegraph-noise model of the Fig. 10 robustness study,
//! * [`fault`] — persistent device faults: seeded per-crossbar stuck-at maps, lognormal
//!   drift-with-age, wear accumulation, the [`DeviceHealth`] summary trait, and the
//!   fault-injecting [`FaultyReFloatOperator`] with spare remapping and ABFT detection.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accelerator;
pub mod cost;
pub mod engine;
pub mod events;
pub mod fault;
pub mod gpu;
pub mod multichip;
pub mod noise;
pub mod xbar;

pub use accelerator::{AcceleratorConfig, SolverKind, SolverTimeBreakdown};
pub use cost::{crossbar_count_eq2, crossbars_per_cluster, cycle_count_eq3};
pub use events::{ChipPhase, CollectingHook, CycleEvent, CycleHook};
pub use fault::{
    ChipFaultState, DeviceHealth, FaultMap, FaultModelConfig, FaultyReFloatOperator, HealthSummary,
};
pub use gpu::GpuModel;
pub use multichip::{
    MultiChipAccelerator, MultiChipConfig, MultiChipSolveBreakdown, ShardedSpmvBreakdown,
};
pub use noise::NoisyReFloatOperator;
