//! Chip-level accelerator model: the Table IV organizations, the cluster-capacity
//! arithmetic of §VI.B, and the SpMV / solver time model behind Fig. 8.
//!
//! Both accelerators (Feinberg and ReFloat) are modelled as a pool of 128×128 crossbars
//! grouped into *clusters*, one cluster per matrix block.  A full SpMV needs as many
//! clusters as the matrix has non-empty blocks; when that exceeds the clusters the chip
//! can hold, the matrix has to be streamed through the chip in multiple *rounds*, each
//! round paying a cell-write phase (re-programming the crossbars) on top of the compute
//! phase — exactly the effect the paper describes for `thermomech_TC`, `Dubcova2` and
//! `thermomech_dM`.

use refloat_core::format::ReFloatConfig;

use crate::cost;

// `SolverKind` moved down into `refloat-solvers` (the refinement ladder dispatches on
// it); re-exported here so `reram_sim::accelerator::SolverKind` keeps working.
pub use refloat_solvers::SolverKind;

/// An accelerator configuration (one column of Table IV plus derived quantities).
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Human-readable platform name.
    pub name: String,
    /// Crossbar edge length (128 in Table IV).
    pub crossbar_size: usize,
    /// Total number of crossbars available for computation.
    pub total_crossbars: u64,
    /// Crossbars occupied by one cluster (one matrix block).
    pub crossbars_per_cluster: u32,
    /// Pipeline cycles for one block MVM (Eq. 3).
    pub cycles_per_block_mvm: u64,
    /// Latency of one pipeline cycle in nanoseconds (one crossbar compute + ADC
    /// conversion; 107 ns in Table IV).
    pub cycle_time_ns: f64,
    /// Single-cell write latency in nanoseconds (50.88 ns SLC in Table IV).
    pub cell_write_ns: f64,
    /// Per-iteration digital overhead (MACs, vector updates) in nanoseconds.
    pub iteration_overhead_ns: f64,
}

/// How one SpMV and one whole solve break down in the time model.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverTimeBreakdown {
    /// Clusters needed to hold the whole matrix (one per non-empty block).
    pub clusters_required: u64,
    /// Clusters the chip can hold simultaneously.
    pub clusters_available: u64,
    /// Streaming rounds per SpMV (`ceil(required / available)`).
    pub rounds_per_spmv: u64,
    /// Seconds spent computing per SpMV.
    pub spmv_compute_s: f64,
    /// Seconds spent re-programming cells per SpMV (zero when the matrix fits).
    pub spmv_write_s: f64,
    /// Total seconds for one SpMV.
    pub spmv_total_s: f64,
    /// Total seconds for the whole solve.
    pub solver_total_s: f64,
    /// Iterations the solve took.
    pub iterations: u64,
}

impl AcceleratorConfig {
    /// The ReFloat accelerator of Table IV for a given format: 2^18 compute crossbars of
    /// 128×128 cells, `2^e + f + 1` crossbars per cluster, Eq. 3 cycles per block MVM,
    /// 107 ns per cycle and 50.88 ns per cell write.
    pub fn refloat(config: &ReFloatConfig) -> Self {
        AcceleratorConfig {
            name: format!("ReFloat {config}"),
            crossbar_size: config.block_size(),
            total_crossbars: 1 << 18,
            crossbars_per_cluster: cost::crossbars_per_cluster(config.e, config.f),
            cycles_per_block_mvm: cost::cycle_count_eq3(config.e, config.f, config.ev, config.fv),
            cycle_time_ns: 107.0,
            cell_write_ns: 50.88,
            iteration_overhead_ns: 1_000.0,
        }
    }

    /// The Feinberg [ISCA'18] accelerator of Table IV: same crossbar pool, but 118
    /// crossbars per cluster (the figure quoted in §VI.B: 64 exponent paddings, 53
    /// fraction slices including the leading one, plus the sign slice) and 233 cycles
    /// per block MVM.
    pub fn feinberg() -> Self {
        AcceleratorConfig {
            name: "Feinberg [ISCA'18]".to_string(),
            crossbar_size: 128,
            total_crossbars: 1 << 18,
            crossbars_per_cluster: 118,
            cycles_per_block_mvm: cost::cycle_count_eq3(6, 52, 6, 52),
            cycle_time_ns: 107.0,
            cell_write_ns: 50.88,
            iteration_overhead_ns: 1_000.0,
        }
    }

    /// Number of clusters the chip holds simultaneously.
    pub fn clusters_available(&self) -> u64 {
        self.total_crossbars / self.crossbars_per_cluster as u64
    }

    /// Time to re-program one cluster's crossbars for a new block, in seconds.
    ///
    /// Rows of a crossbar are written one at a time; the crossbars of a cluster (and all
    /// clusters of a round) are written in parallel, so one remap costs
    /// `crossbar_size · cell_write_ns`.
    pub fn cluster_write_time_s(&self) -> f64 {
        self.crossbar_size as f64 * self.cell_write_ns * 1e-9
    }

    /// Time for one block MVM (the Eq. 3 cycles at the Table IV cycle latency), seconds.
    pub fn block_mvm_time_s(&self) -> f64 {
        self.cycles_per_block_mvm as f64 * self.cycle_time_ns * 1e-9
    }

    /// Streaming rounds needed per SpMV for a matrix with `num_blocks` non-empty blocks.
    pub fn rounds_per_spmv(&self, num_blocks: u64) -> u64 {
        num_blocks.div_ceil(self.clusters_available().max(1)).max(1)
    }

    /// Time for one full SpMV over a matrix with `num_blocks` non-empty blocks, seconds.
    ///
    /// All clusters of a round operate in parallel, so a round costs one block-MVM time;
    /// when the matrix does not fit, every round additionally pays a cluster re-write.
    pub fn spmv_time_s(&self, num_blocks: u64) -> (f64, f64) {
        let rounds = self.rounds_per_spmv(num_blocks);
        let compute = rounds as f64 * self.block_mvm_time_s();
        let write = if rounds > 1 {
            rounds as f64 * self.cluster_write_time_s()
        } else {
            0.0
        };
        (compute, write)
    }

    /// Full solver-time breakdown for a matrix with `num_blocks` non-empty blocks and a
    /// solve that took `iterations` iterations of `solver`.
    pub fn solver_time(
        &self,
        num_blocks: u64,
        iterations: u64,
        solver: SolverKind,
    ) -> SolverTimeBreakdown {
        let (compute, write) = self.spmv_time_s(num_blocks);
        let spmv_total = compute + write;
        let spmv_count = iterations * solver.spmv_per_iteration();
        let solver_total =
            spmv_count as f64 * spmv_total + iterations as f64 * self.iteration_overhead_ns * 1e-9;
        SolverTimeBreakdown {
            clusters_required: num_blocks,
            clusters_available: self.clusters_available(),
            rounds_per_spmv: self.rounds_per_spmv(num_blocks),
            spmv_compute_s: compute,
            spmv_write_s: write,
            spmv_total_s: spmv_total,
            solver_total_s: solver_total,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_capacities_match_the_papers_worked_numbers() {
        // §VI.B: with 118 crossbars per cluster "there are only 2221 clusters
        // available"; with the ReFloat e = 3, f = 3 mapping there are 21845.
        let feinberg = AcceleratorConfig::feinberg();
        assert_eq!(feinberg.clusters_available(), 2221);
        let refloat = AcceleratorConfig::refloat(&ReFloatConfig::paper_default());
        assert_eq!(refloat.clusters_available(), 21845);
    }

    #[test]
    fn cycles_per_block_mvm_match_section_vib() {
        assert_eq!(AcceleratorConfig::feinberg().cycles_per_block_mvm, 233);
        assert_eq!(
            AcceleratorConfig::refloat(&ReFloatConfig::paper_default()).cycles_per_block_mvm,
            28
        );
    }

    #[test]
    fn write_rounds_match_the_papers_thermomech_example() {
        // §VI.B: matrix 2257 needs 209263 clusters -> 103 write/invoke rounds on
        // Feinberg (2221 clusters) but only 10 on ReFloat (21845 clusters); matrix 2259
        // needs 381321 -> 187 vs 18.
        let feinberg = AcceleratorConfig::feinberg();
        let refloat = AcceleratorConfig::refloat(&ReFloatConfig::paper_default());
        assert_eq!(feinberg.rounds_per_spmv(209_263), 95);
        assert_eq!(refloat.rounds_per_spmv(209_263), 10);
        assert_eq!(feinberg.rounds_per_spmv(381_321), 172);
        assert_eq!(refloat.rounds_per_spmv(381_321), 18);
    }

    #[test]
    fn small_matrices_fit_in_one_round_and_pay_no_writes() {
        let refloat = AcceleratorConfig::refloat(&ReFloatConfig::paper_default());
        let (compute, write) = refloat.spmv_time_s(2_000);
        assert_eq!(write, 0.0);
        assert!((compute - 28.0 * 107.0e-9).abs() < 1e-12);
    }

    #[test]
    fn oversized_matrices_pay_writes_every_round() {
        let feinberg = AcceleratorConfig::feinberg();
        let (compute, write) = feinberg.spmv_time_s(10 * 2221);
        assert!(write > 0.0);
        assert!(compute > 0.0);
        // 10 rounds of compute, 10 rounds of writes.
        assert!((compute - 10.0 * feinberg.block_mvm_time_s()).abs() < 1e-12);
        assert!((write - 10.0 * feinberg.cluster_write_time_s()).abs() < 1e-12);
        // Writing dominates: 128 · 50.88 ns ≈ 6.5 µs per round vs 233 · 107 ns ≈ 25 µs.
        assert!(feinberg.cluster_write_time_s() < feinberg.block_mvm_time_s());
    }

    #[test]
    fn solver_time_scales_with_iterations_and_spmv_count() {
        let refloat = AcceleratorConfig::refloat(&ReFloatConfig::paper_default());
        let cg = refloat.solver_time(5_000, 100, SolverKind::Cg);
        let bicg = refloat.solver_time(5_000, 100, SolverKind::BiCgStab);
        // BiCGSTAB does twice the SpMV work per iteration (plus shared per-iteration
        // digital overhead), so it sits between 1.5x and 2x the CG time here.
        assert!(bicg.solver_total_s > 1.5 * cg.solver_total_s);
        assert!(bicg.solver_total_s < 2.0 * cg.solver_total_s);
        assert_eq!(cg.rounds_per_spmv, 1);
        assert_eq!(cg.iterations, 100);
        let cg_double = refloat.solver_time(5_000, 200, SolverKind::Cg);
        assert!(cg_double.solver_total_s > 1.99 * cg.solver_total_s - 1e-9);
    }

    #[test]
    fn refloat_is_faster_than_feinberg_for_the_same_workload() {
        // Fewer crossbars per cluster (more parallel blocks) and fewer cycles per block
        // MVM: ReFloat wins on both axes of the §VI.B analysis.
        let feinberg = AcceleratorConfig::feinberg();
        let refloat = AcceleratorConfig::refloat(&ReFloatConfig::paper_default());
        for blocks in [1_000u64, 10_000, 100_000, 400_000] {
            let tf = feinberg
                .solver_time(blocks, 80, SolverKind::Cg)
                .solver_total_s;
            let tr = refloat
                .solver_time(blocks, 95, SolverKind::Cg)
                .solver_total_s;
            assert!(
                tr < tf,
                "ReFloat ({tr:.3e}s) should beat Feinberg ({tf:.3e}s) at {blocks} blocks"
            );
        }
    }
}
