//! Cycle-event hooks: a small observer API that lets a host (the runtime's worker
//! pool, a bench harness, a test) see how the simulator attributed cycles and
//! simulated seconds to chip phases, without the simulator depending on any
//! particular telemetry backend.
//!
//! Seconds here are **simulated** seconds from the Eq. 3 cycle model — bitwise
//! reproducible, never wall clock (see the deterministic-clock contract in
//! `refloat-telemetry`).

use std::sync::Mutex;

/// A phase of chip activity that consumes simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipPhase {
    /// Writing ReFloat blocks into crossbars (one-off per encoded matrix).
    Program,
    /// Crossbar MVM compute (the Eq. 3 pipeline).
    Compute,
    /// Streaming vector segments / results between host and chip.
    StreamWrite,
    /// Cross-chip reduction of partial results (sharded solves only).
    Reduction,
    /// Host-side fp64 work attributed to the solve (residuals, refinement).
    HostFp64,
}

impl ChipPhase {
    /// All phases, in pipeline order.
    pub const ALL: [ChipPhase; 5] = [
        ChipPhase::Program,
        ChipPhase::Compute,
        ChipPhase::StreamWrite,
        ChipPhase::Reduction,
        ChipPhase::HostFp64,
    ];

    /// A stable lowercase label for exports.
    pub fn label(self) -> &'static str {
        match self {
            ChipPhase::Program => "program",
            ChipPhase::Compute => "compute",
            ChipPhase::StreamWrite => "stream_write",
            ChipPhase::Reduction => "reduction",
            ChipPhase::HostFp64 => "host_fp64",
        }
    }
}

/// One attribution of simulated cost to a chip phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleEvent {
    /// The phase the cost belongs to.
    pub phase: ChipPhase,
    /// Model cycles spent in the phase (0 for host-side phases, which are modelled
    /// in seconds directly).
    pub cycles: u64,
    /// Simulated seconds spent in the phase.
    pub seconds: f64,
}

/// Observer of [`CycleEvent`]s.  Implementations must be thread-safe: the runtime
/// fires events from every worker.  (`Debug` is a supertrait so hosts can hold a
/// `dyn CycleHook` inside `#[derive(Debug)]` structures.)
pub trait CycleHook: Send + Sync + std::fmt::Debug {
    /// Called once per phase attribution.
    fn on_event(&self, event: &CycleEvent);
}

/// A [`CycleHook`] that appends every event to a vector, for tests and ad-hoc
/// inspection.
#[derive(Debug, Default)]
pub struct CollectingHook {
    events: Mutex<Vec<CycleEvent>>,
}

impl CollectingHook {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the events collected so far.
    pub fn snapshot(&self) -> Vec<CycleEvent> {
        self.events.lock().expect("cycle hook poisoned").clone()
    }

    /// Total simulated seconds attributed to the given phase.
    pub fn seconds_in(&self, phase: ChipPhase) -> f64 {
        self.snapshot()
            .iter()
            .filter(|e| e.phase == phase)
            .map(|e| e.seconds)
            .sum()
    }
}

impl CycleHook for CollectingHook {
    fn on_event(&self, event: &CycleEvent) {
        self.events
            .lock()
            .expect("cycle hook poisoned")
            .push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_stable() {
        let labels: Vec<&str> = ChipPhase::ALL.iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(ChipPhase::Compute.label(), "compute");
    }

    #[test]
    fn collecting_hook_accumulates_per_phase() {
        let hook = CollectingHook::new();
        hook.on_event(&CycleEvent {
            phase: ChipPhase::Compute,
            cycles: 100,
            seconds: 1.0,
        });
        hook.on_event(&CycleEvent {
            phase: ChipPhase::Compute,
            cycles: 50,
            seconds: 0.5,
        });
        hook.on_event(&CycleEvent {
            phase: ChipPhase::Reduction,
            cycles: 0,
            seconds: 0.25,
        });
        assert_eq!(hook.snapshot().len(), 3);
        assert_eq!(hook.seconds_in(ChipPhase::Compute), 1.5);
        assert_eq!(hook.seconds_in(ChipPhase::Program), 0.0);
    }
}
