//! GPU baseline timing model (the V100 + cuSPARSE platform of Table IV).
//!
//! The paper measures wall-clock solver time on a real Tesla V100.  No GPU is available
//! in this environment, so the baseline is modelled with the two effects that dominate
//! iterative sparse solvers on GPUs (see DESIGN.md §3):
//!
//! * memory-bound kernels: SpMV and the vector updates stream their operands from HBM,
//!   so each kernel costs `bytes / bandwidth`, and
//! * kernel-launch / synchronization latency: every kernel pays a fixed overhead, which
//!   dominates for the small and medium matrices of Table V (this is the reason ReRAM
//!   accelerators show 10–40× gains there).
//!
//! The defaults (900 GB/s effective HBM2 bandwidth, 8 µs per kernel launch, ~6/10
//! kernels per CG/BiCGSTAB iteration including the dot-product reductions) reproduce
//! the per-iteration times of a few tens of microseconds that the paper's speedups
//! imply.

use crate::accelerator::SolverKind;

/// A roofline + launch-latency GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Human-readable name.
    pub name: String,
    /// Effective memory bandwidth in bytes per second.
    pub mem_bandwidth_bps: f64,
    /// Fixed cost per kernel launch (including host-side latency), seconds.
    pub kernel_launch_s: f64,
    /// Number of auxiliary (vector/dot) kernels per CG iteration.
    pub cg_vector_kernels: u32,
    /// Number of auxiliary kernels per BiCGSTAB iteration.
    pub bicgstab_vector_kernels: u32,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::v100()
    }
}

impl GpuModel {
    /// The Tesla V100 SXM2 of Table IV.
    pub fn v100() -> Self {
        GpuModel {
            name: "Tesla V100 SXM2 (modelled)".to_string(),
            mem_bandwidth_bps: 900.0e9,
            kernel_launch_s: 8.0e-6,
            cg_vector_kernels: 6,
            bicgstab_vector_kernels: 10,
        }
    }

    /// Bytes moved by one CSR SpMV: values (8 B) + column indices (4 B) per non-zero,
    /// row pointers (4 B), input and output vectors (8 B each) per row.
    pub fn spmv_bytes(&self, nnz: u64, nrows: u64) -> u64 {
        nnz * (8 + 4) + nrows * (4 + 8 + 8)
    }

    /// Time of one SpMV kernel, seconds.
    pub fn spmv_time_s(&self, nnz: u64, nrows: u64) -> f64 {
        let streaming = self.spmv_bytes(nnz, nrows) as f64 / self.mem_bandwidth_bps;
        streaming.max(0.0) + self.kernel_launch_s
    }

    /// Time of one vector kernel (axpy / dot / scale) over `nrows` elements, seconds.
    pub fn vector_kernel_time_s(&self, nrows: u64) -> f64 {
        let streaming = (nrows * 8 * 2) as f64 / self.mem_bandwidth_bps;
        streaming + self.kernel_launch_s
    }

    /// Time of one solver iteration, seconds.
    pub fn iteration_time_s(&self, nnz: u64, nrows: u64, solver: SolverKind) -> f64 {
        let (spmvs, vector_kernels) = match solver {
            SolverKind::Cg => (1, self.cg_vector_kernels),
            SolverKind::BiCgStab => (2, self.bicgstab_vector_kernels),
        };
        spmvs as f64 * self.spmv_time_s(nnz, nrows)
            + vector_kernels as f64 * self.vector_kernel_time_s(nrows)
    }

    /// Total solver time for `iterations` iterations, seconds.
    pub fn solver_time_s(&self, nnz: u64, nrows: u64, iterations: u64, solver: SolverKind) -> f64 {
        iterations as f64 * self.iteration_time_s(nnz, nrows, solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_latency_dominates_small_matrices() {
        let gpu = GpuModel::v100();
        // crystm01-sized workload: ~105k nnz, ~4.9k rows -> well under 1 µs of
        // streaming, so the 8 µs launch dominates.
        let t = gpu.spmv_time_s(105_339, 4_875);
        assert!(t > gpu.kernel_launch_s);
        assert!(t < 2.0 * gpu.kernel_launch_s);
    }

    #[test]
    fn bandwidth_dominates_large_matrices() {
        let gpu = GpuModel::v100();
        // A 100M-nonzero matrix streams ~1.2 GB -> ~1.3 ms, far above the launch cost.
        let t = gpu.spmv_time_s(100_000_000, 5_000_000);
        assert!(t > 100.0 * gpu.kernel_launch_s);
    }

    #[test]
    fn iteration_time_is_microseconds_scale_for_table_v_workloads() {
        // The Fig. 8 speedups of 10-40x over the GPU with ReFloat SpMVs of ~3 µs imply
        // GPU iteration times of some tens of microseconds.
        let gpu = GpuModel::v100();
        let t = gpu.iteration_time_s(583_770, 24_696, SolverKind::Cg); // crystm03
        assert!(t > 20.0e-6 && t < 200.0e-6, "t = {t}");
    }

    #[test]
    fn bicgstab_iterations_cost_more_than_cg() {
        let gpu = GpuModel::v100();
        let cg = gpu.iteration_time_s(500_000, 50_000, SolverKind::Cg);
        let bi = gpu.iteration_time_s(500_000, 50_000, SolverKind::BiCgStab);
        assert!(bi > 1.5 * cg);
    }

    #[test]
    fn solver_time_scales_linearly_with_iterations() {
        let gpu = GpuModel::v100();
        let t100 = gpu.solver_time_s(1_000_000, 100_000, 100, SolverKind::Cg);
        let t200 = gpu.solver_time_s(1_000_000, 100_000, 200, SolverKind::Cg);
        assert!((t200 / t100 - 2.0).abs() < 1e-12);
    }
}
