//! Iterative Krylov solvers for the ReFloat reproduction.
//!
//! The paper evaluates two Krylov-subspace solvers — Conjugate Gradient (CG, Hestenes &
//! Stiefel) and stabilized bi-conjugate gradient (BiCGSTAB, van der Vorst) — whose only
//! interaction with the matrix is the sparse matrix–vector product `y = A·x` (Code 1 of
//! the paper).  Both solvers here are therefore generic over a [`LinearOperator`]:
//!
//! * plain `f64` CSR / blocked SpMV (`refloat-sparse`) models the GPU and "Feinberg-fc"
//!   baselines, which are numerically exact double precision;
//! * the quantized operators in `refloat-core` model ReFloat and the Feinberg
//!   exponent-truncation baseline;
//! * the noisy crossbar operators in `reram-sim` model analog-noise studies (Fig. 10).
//!
//! Each solve records a residual trace (for the convergence plots of Fig. 9), the number
//! of iterations and SpMV applications (the quantities the accelerator timing model
//! consumes), and the reason it stopped.
//!
//! On top of the plain solvers, [`refinement`] implements **mixed-precision iterative
//! refinement** (defect correction): an outer fp64 loop computes exact residuals
//! `r = b − A·x` and accumulates corrections solved at low precision on a
//! [`PrecisionLadder`], escalating to wider formats (or fp64) when a rung stops
//! contracting the residual.  This recovers full fp64 accuracy from inner solves that
//! on their own stall at the quantization floor — the Le Gallo et al. mixed-precision
//! in-memory-computing recipe, expressed over the same [`LinearOperator`] abstraction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bicgstab;
pub mod cg;
pub mod eigs;
pub mod jacobi;
pub mod operator;
pub mod refinement;
pub mod result;
pub mod warm;

pub use bicgstab::bicgstab;
pub use cg::{cg, pcg};
pub use eigs::{EigenConfidence, EigenEstimate};
pub use jacobi::Equilibration;
pub use operator::{LinearOperator, OperatorStats};
pub use refinement::{
    refine, refine_warm, OperatorLadder, PrecisionLadder, RefinementConfig, RefinementPass,
    RefinementResult, RefinementStop,
};
pub use result::{SolveResult, SolverConfig, StopReason};
pub use warm::{solve_warm, solve_warm_split, WarmPath, WarmSolve};

/// Which Krylov solver to run (they differ in SpMVs per iteration).
///
/// This lives in the solver crate so that both the hardware time model (`reram-sim`,
/// which re-exports it) and the precision-ladder dispatch of [`refinement`] can name a
/// solver without depending on each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SolverKind {
    /// Conjugate Gradient: 1 SpMV per iteration.
    Cg,
    /// BiCGSTAB: 2 SpMVs per iteration.
    BiCgStab,
}

impl SolverKind {
    /// SpMVs executed per solver iteration.
    pub fn spmv_per_iteration(&self) -> u64 {
        match self {
            SolverKind::Cg => 1,
            SolverKind::BiCgStab => 2,
        }
    }

    /// Runs the chosen solver on `a` against `rhs` (starting from `x₀ = 0`).
    pub fn solve<A: LinearOperator + ?Sized>(
        &self,
        a: &mut A,
        rhs: &[f64],
        config: &SolverConfig,
    ) -> SolveResult {
        match self {
            SolverKind::Cg => cg(a, rhs, config),
            SolverKind::BiCgStab => bicgstab(a, rhs, config),
        }
    }

    /// Solves one system per right-hand side against the *same* operator, in order.
    ///
    /// The Krylov iterations themselves are inherently single-vector, so each column is
    /// bitwise identical to a standalone [`solve`](Self::solve); the point of batching
    /// is upstream — the accelerator programs the operator onto its chips once and the
    /// runtime amortizes that (plus encode-cache traffic) across the whole batch.
    pub fn solve_batch<A: LinearOperator + ?Sized>(
        &self,
        a: &mut A,
        rhss: &[&[f64]],
        config: &SolverConfig,
    ) -> Vec<SolveResult> {
        rhss.iter().map(|rhs| self.solve(a, rhs, config)).collect()
    }
}
