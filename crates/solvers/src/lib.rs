//! Iterative Krylov solvers for the ReFloat reproduction.
//!
//! The paper evaluates two Krylov-subspace solvers — Conjugate Gradient (CG, Hestenes &
//! Stiefel) and stabilized bi-conjugate gradient (BiCGSTAB, van der Vorst) — whose only
//! interaction with the matrix is the sparse matrix–vector product `y = A·x` (Code 1 of
//! the paper).  Both solvers here are therefore generic over a [`LinearOperator`]:
//!
//! * plain `f64` CSR / blocked SpMV (`refloat-sparse`) models the GPU and "Feinberg-fc"
//!   baselines, which are numerically exact double precision;
//! * the quantized operators in `refloat-core` model ReFloat and the Feinberg
//!   exponent-truncation baseline;
//! * the noisy crossbar operators in `reram-sim` model analog-noise studies (Fig. 10).
//!
//! Each solve records a residual trace (for the convergence plots of Fig. 9), the number
//! of iterations and SpMV applications (the quantities the accelerator timing model
//! consumes), and the reason it stopped.

#![warn(missing_docs)]

pub mod bicgstab;
pub mod cg;
pub mod eigs;
pub mod jacobi;
pub mod operator;
pub mod result;

pub use bicgstab::bicgstab;
pub use cg::{cg, pcg};
pub use operator::{LinearOperator, OperatorStats};
pub use result::{SolveResult, SolverConfig, StopReason};
