//! Jacobi (diagonal) preconditioning helpers.
//!
//! The paper's solvers are unpreconditioned, but a diagonal preconditioner is a natural
//! extension for badly scaled systems (it is also what the related ReRAM work by
//! Feinberg et al. later explored as an "analog preconditioner").  The helpers here
//! extract the inverse diagonal in the form [`crate::cg::pcg`] expects.

use refloat_sparse::CsrMatrix;

/// Returns the inverse diagonal `1 / a_ii` of a matrix, suitable for [`crate::cg::pcg`].
///
/// Rows with a zero (or missing) diagonal get a unit weight so the preconditioner stays
/// well defined; for the SPD workloads in this repository every diagonal entry is
/// positive.
pub fn inverse_diagonal(a: &CsrMatrix) -> Vec<f64> {
    a.diagonal()
        .iter()
        .map(|&d| {
            if d != 0.0 && d.is_finite() {
                1.0 / d
            } else {
                1.0
            }
        })
        .collect()
}

/// Symmetrically scales a right-hand side by `D^{-1/2}`, returning the scaled vector —
/// used together with [`symmetric_diagonal_scaling`] when equilibrating a system before
/// quantization (an optional preprocessing step for very badly scaled matrices).
pub fn scale_rhs(b: &[f64], diag: &[f64]) -> Vec<f64> {
    b.iter()
        .zip(diag.iter())
        .map(|(&bi, &di)| if di > 0.0 { bi / di.sqrt() } else { bi })
        .collect()
}

/// Computes the symmetrically scaled matrix `D^{-1/2} A D^{-1/2}` (Jacobi equilibration).
///
/// The result has a unit diagonal, which concentrates the exponent range of the entries
/// — an alternative way to help fixed-window formats that we compare against ReFloat in
/// the ablation benchmarks.
pub fn symmetric_diagonal_scaling(a: &CsrMatrix) -> CsrMatrix {
    let diag = a.diagonal();
    let mut coo = a.to_coo();
    let scale: Vec<f64> = diag
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 1.0 })
        .collect();
    let rows = coo.row_indices().to_vec();
    let cols = coo.col_indices().to_vec();
    let vals: Vec<f64> = coo
        .iter()
        .map(|(r, c, v)| v * scale[r] * scale[c])
        .collect();
    coo = refloat_sparse::CooMatrix::from_triplets(a.nrows(), a.ncols(), rows, cols, vals)
        .expect("same structure remains valid");
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::generators;

    #[test]
    fn inverse_diagonal_inverts_positive_entries() {
        let a = generators::logspace_diagonal(5, 1.0, 16.0).to_csr();
        let inv = inverse_diagonal(&a);
        for (d, i) in a.diagonal().iter().zip(inv.iter()) {
            assert!((d * i - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn inverse_diagonal_handles_missing_diagonal() {
        let mut coo = refloat_sparse::CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 2, 1.0); // row 1 has no diagonal entry
        coo.push(2, 2, 4.0);
        let inv = inverse_diagonal(&coo.to_csr());
        assert_eq!(inv[1], 1.0);
        assert_eq!(inv[0], 0.5);
    }

    #[test]
    fn symmetric_scaling_produces_unit_diagonal() {
        let a = generators::mass_matrix_3d(4, 4, 4, 1e-12, 0.5, 3).to_csr();
        let scaled = symmetric_diagonal_scaling(&a);
        for d in scaled.diagonal() {
            assert!((d - 1.0).abs() < 1e-12, "diagonal entry {d}");
        }
        assert!(scaled.is_symmetric(1e-12));
        assert_eq!(scaled.nnz(), a.nnz());
    }

    #[test]
    fn scale_rhs_matches_manual_division() {
        let b = vec![4.0, 9.0];
        let d = vec![4.0, 9.0];
        assert_eq!(scale_rhs(&b, &d), vec![2.0, 3.0]);
    }
}
