//! Jacobi (diagonal) preconditioning and equilibration helpers.
//!
//! The paper's solvers are unpreconditioned, but a diagonal preconditioner is a natural
//! extension for badly scaled systems (it is also what the related ReRAM work by
//! Feinberg et al. later explored as an "analog preconditioner").  The helpers here
//! extract the inverse diagonal in the form [`crate::cg::pcg`] expects, and
//! [`Equilibration`] packages the *symmetric diagonal scaling*
//! `D^{-1/2} A D^{-1/2} y = D^{-1/2} b`, `x = D^{-1/2} y` as one typed unit so the
//! matrix, right-hand side and solution can never be scaled against different
//! diagonals (the old free-function API took a raw `diag` slice that was easy to
//! confuse with the *inverse* diagonal of [`inverse_diagonal`], silently producing a
//! wrongly scaled system).

use refloat_sparse::CsrMatrix;

/// Returns the inverse diagonal `1 / a_ii` of a matrix, suitable for [`crate::cg::pcg`].
///
/// Rows with a zero (or missing) diagonal get a unit weight so the preconditioner stays
/// well defined; for the SPD workloads in this repository every diagonal entry is
/// positive.
pub fn inverse_diagonal(a: &CsrMatrix) -> Vec<f64> {
    a.diagonal()
        .iter()
        .map(|&d| {
            if d != 0.0 && d.is_finite() {
                1.0 / d
            } else {
                1.0
            }
        })
        .collect()
}

/// A symmetric Jacobi equilibration `A → D^{-1/2} A D^{-1/2}` captured as one object.
///
/// Built once from the matrix ([`Equilibration::of`]), it owns the `D^{-1/2}` weights
/// and exposes every transformation of the equilibrated solve:
///
/// ```text
///   Ã = D^{-1/2} A D^{-1/2}          (scale_matrix)
///   b̃ = D^{-1/2} b                   (scale_rhs)
///   solve Ã y = b̃
///   x = D^{-1/2} y                   (unscale_solution)
/// ```
///
/// so `A x = b` round-trips exactly.  Rows with a non-positive (or missing) diagonal
/// keep a unit weight, matching [`inverse_diagonal`].
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibration {
    /// The per-row weights `d_i^{-1/2}` (1.0 where the diagonal is non-positive).
    inv_sqrt_diag: Vec<f64>,
}

impl Equilibration {
    /// Builds the equilibration from the diagonal of `a`.
    pub fn of(a: &CsrMatrix) -> Self {
        Equilibration {
            inv_sqrt_diag: a
                .diagonal()
                .iter()
                .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 1.0 })
                .collect(),
        }
    }

    /// Number of rows the equilibration was built for.
    pub fn len(&self) -> usize {
        self.inv_sqrt_diag.len()
    }

    /// Whether the equilibration is empty (zero-row matrix).
    pub fn is_empty(&self) -> bool {
        self.inv_sqrt_diag.is_empty()
    }

    /// The `D^{-1/2}` weights.
    pub fn weights(&self) -> &[f64] {
        &self.inv_sqrt_diag
    }

    /// Computes the symmetrically scaled matrix `Ã = D^{-1/2} A D^{-1/2}`.
    ///
    /// The result has a unit diagonal (wherever `A`'s diagonal was positive), which
    /// concentrates the exponent range of the entries — an alternative way to help
    /// fixed-window formats that we compare against ReFloat in the ablation benchmarks.
    ///
    /// # Panics
    /// Panics if `a` has a different row count than the matrix this equilibration was
    /// built from.
    pub fn scale_matrix(&self, a: &CsrMatrix) -> CsrMatrix {
        assert_eq!(
            a.nrows(),
            self.len(),
            "Equilibration: matrix has {} rows but the weights cover {}",
            a.nrows(),
            self.len()
        );
        let coo = a.to_coo();
        let rows = coo.row_indices().to_vec();
        let cols = coo.col_indices().to_vec();
        let scale = &self.inv_sqrt_diag;
        let vals: Vec<f64> = coo
            .iter()
            .map(|(r, c, v)| v * scale[r] * scale[c])
            .collect();
        refloat_sparse::CooMatrix::from_triplets(a.nrows(), a.ncols(), rows, cols, vals)
            .expect("same structure remains valid")
            .to_csr()
    }

    /// Scales a right-hand side: `b̃ = D^{-1/2} b`.
    ///
    /// # Panics
    /// Panics if `b.len()` disagrees with the equilibration.
    pub fn scale_rhs(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(
            b.len(),
            self.len(),
            "Equilibration: rhs has {} entries but the weights cover {}",
            b.len(),
            self.len()
        );
        b.iter()
            .zip(self.inv_sqrt_diag.iter())
            .map(|(&bi, &wi)| bi * wi)
            .collect()
    }

    /// Recovers the solution of the original system from the equilibrated one:
    /// `x = D^{-1/2} y` (since `Ã y = b̃` with `Ã = D^{-1/2} A D^{-1/2}` means
    /// `A (D^{-1/2} y) = b`).
    ///
    /// # Panics
    /// Panics if `y.len()` disagrees with the equilibration.
    pub fn unscale_solution(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(
            y.len(),
            self.len(),
            "Equilibration: solution has {} entries but the weights cover {}",
            y.len(),
            self.len()
        );
        y.iter()
            .zip(self.inv_sqrt_diag.iter())
            .map(|(&yi, &wi)| yi * wi)
            .collect()
    }
}

/// Computes the symmetrically scaled matrix `D^{-1/2} A D^{-1/2}` (Jacobi
/// equilibration) in one call; use [`Equilibration`] when the right-hand side and
/// solution must be transformed consistently as well.
pub fn symmetric_diagonal_scaling(a: &CsrMatrix) -> CsrMatrix {
    Equilibration::of(a).scale_matrix(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use crate::result::SolverConfig;
    use refloat_matgen::generators;
    use refloat_sparse::vecops;

    #[test]
    fn inverse_diagonal_inverts_positive_entries() {
        let a = generators::logspace_diagonal(5, 1.0, 16.0).to_csr();
        let inv = inverse_diagonal(&a);
        for (d, i) in a.diagonal().iter().zip(inv.iter()) {
            assert!((d * i - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn inverse_diagonal_handles_missing_diagonal() {
        let mut coo = refloat_sparse::CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 2, 1.0); // row 1 has no diagonal entry
        coo.push(2, 2, 4.0);
        let inv = inverse_diagonal(&coo.to_csr());
        assert_eq!(inv[1], 1.0);
        assert_eq!(inv[0], 0.5);
    }

    #[test]
    fn symmetric_scaling_produces_unit_diagonal() {
        let a = generators::mass_matrix_3d(4, 4, 4, 1e-12, 0.5, 3).to_csr();
        let scaled = symmetric_diagonal_scaling(&a);
        for d in scaled.diagonal() {
            assert!((d - 1.0).abs() < 1e-12, "diagonal entry {d}");
        }
        assert!(scaled.is_symmetric(1e-12));
        assert_eq!(scaled.nnz(), a.nnz());
    }

    #[test]
    fn scale_rhs_applies_the_inverse_sqrt_diagonal() {
        // Diagonal entries 4 and 9 → weights 1/2 and 1/3.  The old free function took
        // a raw `diag` slice here; the typed struct owns the weights so the rhs can no
        // longer be scaled against the wrong (e.g. already-inverted) diagonal.
        let mut coo = refloat_sparse::CooMatrix::new(2, 2);
        coo.push(0, 0, 4.0);
        coo.push(1, 1, 9.0);
        let eq = Equilibration::of(&coo.to_csr());
        assert_eq!(eq.scale_rhs(&[4.0, 9.0]), vec![2.0, 3.0]);
        assert_eq!(eq.weights(), &[0.5, 1.0 / 3.0]);
        assert_eq!(eq.len(), 2);
        assert!(!eq.is_empty());
    }

    #[test]
    fn equilibrated_solve_then_unscale_matches_the_direct_solve() {
        // Regression for the scale_rhs footgun: a badly scaled SPD matrix (diagonal
        // spanning ~6 orders of magnitude) solved directly must match
        // equilibrate → solve → unscale to solver accuracy.
        let a = generators::mass_matrix_3d(4, 4, 4, 1e-6, 0.5, 9).to_csr();
        let b: Vec<f64> = (0..a.nrows())
            .map(|i| 1.0 + (i % 7) as f64 * 0.25)
            .collect();
        let cfg = SolverConfig::relative(1e-12).with_trace(false);

        let mut direct_op = a.clone();
        let direct = cg(&mut direct_op, &b, &cfg);
        assert!(direct.converged());

        let eq = Equilibration::of(&a);
        let mut scaled_op = eq.scale_matrix(&a);
        let scaled_rhs = eq.scale_rhs(&b);
        let scaled = cg(&mut scaled_op, &scaled_rhs, &cfg);
        assert!(scaled.converged());
        let x = eq.unscale_solution(&scaled.x);

        let rel = vecops::rel_err(&x, &direct.x);
        assert!(rel < 1e-9, "equilibrated round-trip drifted: rel err {rel}");

        // And the recovered x solves the *original* system.
        let ax = a.spmv(&x);
        let mut r = vec![0.0; b.len()];
        vecops::sub_into(&b, &ax, &mut r);
        assert!(vecops::norm2(&r) / vecops::norm2(&b) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "weights cover")]
    fn mismatched_rhs_length_is_rejected() {
        let a = generators::logspace_diagonal(4, 1.0, 2.0).to_csr();
        let _ = Equilibration::of(&a).scale_rhs(&[1.0, 2.0]);
    }
}
