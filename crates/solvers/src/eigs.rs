//! Extreme-eigenvalue and condition-number estimation.
//!
//! Table V of the paper reports the condition number κ of every workload.  To validate
//! that the synthetic analogues are in the right regime — and to drive the format
//! auto-tuner in `refloat_core::autotune` — this module estimates the largest
//! eigenvalue by power iteration and the smallest by inverse iteration (each inverse
//! application solved by CG), giving `κ ≈ λ_max / λ_min`.
//!
//! # SPD assumption
//!
//! Every estimator here assumes the operator is **symmetric positive definite**: the
//! Rayleigh quotients used by both iterations only converge to eigenvalues of the
//! symmetric part, and the inner CG solves of the inverse iteration require positive
//! definiteness outright.  On a non-SPD operator the estimates are meaningless; the
//! closest observable symptom is a non-positive `λ_min`, which
//! [`EigenEstimate::condition_number`] reports as `+∞` rather than a negative or
//! misleadingly finite κ.

use crate::cg::cg;
use crate::operator::LinearOperator;
use crate::result::SolverConfig;
use refloat_sparse::vecops;

/// How trustworthy an eigenvalue estimate is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EigenConfidence {
    /// Every inner solve the estimate depends on converged.
    Converged,
    /// At least one inner CG solve of the inverse iteration failed to converge, so the
    /// `λ_min` (and hence κ) estimate is a loose bound at best.  Consumers that make
    /// decisions from κ (e.g. the format auto-tuner) should treat the matrix as
    /// worse-conditioned than estimated.
    Degraded,
}

/// Result of an extreme-eigenvalue estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EigenEstimate {
    /// Estimated largest eigenvalue.
    pub lambda_max: f64,
    /// Estimated smallest eigenvalue (0.0 when no reliable estimate was obtained).
    pub lambda_min: f64,
    /// Whether the inner solves behind `lambda_min` all converged.
    pub confidence: EigenConfidence,
}

impl EigenEstimate {
    /// The condition-number estimate `λ_max / λ_min`.
    ///
    /// Returns `+∞` unless both eigenvalue estimates are strictly positive (and not
    /// NaN) — either the matrix is numerically singular, the SPD assumption is
    /// violated, or an iteration failed to produce an estimate — so κ is never
    /// negative and never the silent `NaN`/`-∞` of a raw division.
    pub fn condition_number(&self) -> f64 {
        if self.lambda_min > 0.0 && self.lambda_max > 0.0 {
            self.lambda_max / self.lambda_min
        } else {
            f64::INFINITY
        }
    }

    /// `true` when every inner solve behind the estimate converged and κ is finite.
    pub fn is_reliable(&self) -> bool {
        self.confidence == EigenConfidence::Converged && self.condition_number().is_finite()
    }
}

/// Estimates the largest eigenvalue of an SPD operator by power iteration.
///
/// Returns `NaN` when `iterations == 0`: the internal accumulator starts at 0.0 and is
/// only ever a Rayleigh quotient after at least one iteration, so returning it
/// unchanged would present a stale placeholder as an eigenvalue estimate.
pub fn power_iteration<A: LinearOperator + ?Sized>(a: &mut A, iterations: usize, seed: u64) -> f64 {
    if iterations == 0 {
        return f64::NAN;
    }
    let n = a.nrows();
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            // Deterministic pseudo-random start vector (splitmix-style hash).
            let mut z = (i as u64)
                .wrapping_add(seed)
                .wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    for _ in 0..iterations {
        let norm = vecops::norm2(&x);
        if norm == 0.0 {
            return 0.0;
        }
        vecops::scale(1.0 / norm, &mut x);
        a.apply(&x, &mut y);
        lambda = vecops::dot(&x, &y);
        std::mem::swap(&mut x, &mut y);
    }
    lambda.abs()
}

/// The smallest-eigenvalue estimate of an inverse power iteration, with the confidence
/// of the inner CG solves it depended on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverseIterationEstimate {
    /// Estimated smallest eigenvalue; 0.0 when no reliable estimate was obtained.
    pub lambda_min: f64,
    /// [`EigenConfidence::Degraded`] when an inner CG solve failed to converge.
    pub confidence: EigenConfidence,
}

/// Estimates the smallest eigenvalue of an SPD operator by inverse power iteration,
/// where each application of `A⁻¹` is computed with CG to a loose tolerance.
///
/// Each outer step checks that the inner CG actually converged **before** using its
/// iterate in the Rayleigh quotient: a failed solve yields an arbitrary direction whose
/// quotient is unrelated to `1/λ_min`, so the iteration stops at the last trustworthy
/// estimate and reports [`EigenConfidence::Degraded`].  If the very first inner solve
/// fails there is no trustworthy estimate at all and `lambda_min` is 0.0 (which
/// [`EigenEstimate::condition_number`] maps to `+∞`).
pub fn inverse_power_iteration<A: LinearOperator + ?Sized>(
    a: &mut A,
    outer_iterations: usize,
    seed: u64,
) -> InverseIterationEstimate {
    let n = a.nrows();
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let mut z = (i as u64)
                .wrapping_add(seed ^ 0xABCD)
                .wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            ((z >> 11) as f64 / (1u64 << 53) as f64) + 0.25
        })
        .collect();
    let cfg = SolverConfig::relative(1e-6)
        .with_max_iterations(2_000)
        .with_trace(false);
    let mut mu = 0.0;
    let mut confidence = EigenConfidence::Converged;
    for _ in 0..outer_iterations {
        let norm = vecops::norm2(&x);
        if norm == 0.0 {
            return InverseIterationEstimate {
                lambda_min: 0.0,
                confidence,
            };
        }
        vecops::scale(1.0 / norm, &mut x);
        let solve = cg(a, &x, &cfg);
        if !solve.converged() {
            // The iterate is not an application of A⁻¹; using it would poison the
            // Rayleigh quotient.  Keep the last converged estimate and flag it.
            confidence = EigenConfidence::Degraded;
            break;
        }
        // Rayleigh quotient of the inverse: xᵀ A⁻¹ x ≈ 1/λ_min direction.
        mu = vecops::dot(&x, &solve.x);
        x = solve.x;
    }
    let lambda_min = if mu <= 0.0 { 0.0 } else { 1.0 / mu };
    InverseIterationEstimate {
        lambda_min,
        confidence,
    }
}

/// Estimates both extreme eigenvalues of an SPD operator.
pub fn estimate_extremes<A: LinearOperator + ?Sized>(a: &mut A, seed: u64) -> EigenEstimate {
    let lambda_max = power_iteration(a, 60, seed);
    let inverse = inverse_power_iteration(a, 8, seed);
    EigenEstimate {
        lambda_max,
        lambda_min: inverse.lambda_min,
        confidence: inverse.confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::generators;

    #[test]
    fn diagonal_matrix_extremes_are_recovered() {
        let mut a = generators::logspace_diagonal(200, 0.5, 128.0).to_csr();
        let est = estimate_extremes(&mut a, 1);
        assert!(
            (est.lambda_max - 128.0).abs() / 128.0 < 0.05,
            "λmax = {}",
            est.lambda_max
        );
        assert!(
            (est.lambda_min - 0.5).abs() / 0.5 < 0.1,
            "λmin = {}",
            est.lambda_min
        );
        let kappa = est.condition_number();
        assert!((kappa - 256.0).abs() / 256.0 < 0.15, "κ = {kappa}");
        assert_eq!(est.confidence, EigenConfidence::Converged);
        assert!(est.is_reliable());
    }

    #[test]
    fn laplacian_condition_number_is_in_expected_range() {
        // 1D/2D Laplacian eigenvalues are known: for the 2D 5-point stencil on an m×m
        // grid, λ ∈ [8 sin²(π/(2(m+1))), 8 cos²(π/(2(m+1)))] plus the shift.
        let m = 24;
        let shift = 0.05;
        let mut a = generators::laplacian_2d(m, m, shift).to_csr();
        let est = estimate_extremes(&mut a, 7);
        let h = std::f64::consts::PI / (2.0 * (m as f64 + 1.0));
        let expected_max = 8.0 * h.cos().powi(2) + shift;
        let expected_min = 8.0 * h.sin().powi(2) + shift;
        assert!((est.lambda_max - expected_max).abs() / expected_max < 0.05);
        assert!((est.lambda_min - expected_min).abs() / expected_min < 0.15);
        assert_eq!(est.confidence, EigenConfidence::Converged);
    }

    #[test]
    fn power_iteration_handles_zero_operator() {
        let mut a = crate::operator::DiagonalOperator::new(vec![0.0; 10]);
        assert_eq!(power_iteration(&mut a, 5, 3), 0.0);
    }

    #[test]
    fn power_iteration_with_zero_iterations_returns_nan_not_a_stale_zero() {
        // Regression: with no iterations executed the accumulator was returned as-is
        // (0.0), indistinguishable from a genuine zero eigenvalue estimate.
        let mut a = generators::logspace_diagonal(16, 1.0, 4.0).to_csr();
        assert!(power_iteration(&mut a, 0, 3).is_nan());
    }

    #[test]
    fn failed_inner_cg_yields_a_degraded_estimate_not_garbage() {
        // Regression for the unchecked inner solve: a numerically singular spectrum
        // (κ ≈ 1e30) makes the 2000-iteration inner CG fail.  Pre-fix, the
        // max-iterations iterate was fed into the Rayleigh quotient anyway and a
        // garbage λ_min (and finite, wrong κ) came back with no warning.
        let mut a = generators::logspace_diagonal(3000, 1e-30, 1.0).to_csr();
        let inverse = inverse_power_iteration(&mut a, 4, 11);
        assert_eq!(inverse.confidence, EigenConfidence::Degraded);
        assert_eq!(
            inverse.lambda_min, 0.0,
            "no converged inner solve → no λ_min estimate, got {}",
            inverse.lambda_min
        );

        let est = estimate_extremes(&mut a, 11);
        assert_eq!(est.confidence, EigenConfidence::Degraded);
        assert_eq!(est.condition_number(), f64::INFINITY);
        assert!(!est.is_reliable());
    }

    #[test]
    fn condition_number_of_non_positive_lambda_min_is_positive_infinity() {
        // Regression: λ_min = 0 used to give +∞ *or* NaN, and a (non-SPD) negative
        // λ_min produced a negative κ; all such cases now report +∞.
        for lambda_min in [0.0, -2.0] {
            let est = EigenEstimate {
                lambda_max: 4.0,
                lambda_min,
                confidence: EigenConfidence::Converged,
            };
            assert_eq!(est.condition_number(), f64::INFINITY, "λmin = {lambda_min}");
            assert!(!est.is_reliable());
        }
        // Zero operator: both extremes 0 → +∞, not NaN.
        let zero = EigenEstimate {
            lambda_max: 0.0,
            lambda_min: 0.0,
            confidence: EigenConfidence::Converged,
        };
        assert_eq!(zero.condition_number(), f64::INFINITY);
        // A NaN λ_max (e.g. from `power_iteration(_, 0, _)` or a NaN matrix entry)
        // must also map to +∞, not propagate as a silent NaN κ.
        let nan_max = EigenEstimate {
            lambda_max: f64::NAN,
            lambda_min: 1.0,
            confidence: EigenConfidence::Converged,
        };
        assert_eq!(nan_max.condition_number(), f64::INFINITY);
    }
}
