//! Extreme-eigenvalue and condition-number estimation.
//!
//! Table V of the paper reports the condition number κ of every workload.  To validate
//! that the synthetic analogues are in the right regime, this module estimates the
//! largest eigenvalue by power iteration and the smallest by inverse iteration (each
//! inverse application solved by CG), giving `κ ≈ λ_max / λ_min` for SPD matrices.

use crate::cg::cg;
use crate::operator::LinearOperator;
use crate::result::SolverConfig;
use refloat_sparse::vecops;

/// Result of an extreme-eigenvalue estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EigenEstimate {
    /// Estimated largest eigenvalue.
    pub lambda_max: f64,
    /// Estimated smallest eigenvalue.
    pub lambda_min: f64,
}

impl EigenEstimate {
    /// The condition-number estimate `λ_max / λ_min`.
    pub fn condition_number(&self) -> f64 {
        self.lambda_max / self.lambda_min
    }
}

/// Estimates the largest eigenvalue of an SPD operator by power iteration.
pub fn power_iteration<A: LinearOperator + ?Sized>(a: &mut A, iterations: usize, seed: u64) -> f64 {
    let n = a.nrows();
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            // Deterministic pseudo-random start vector (splitmix-style hash).
            let mut z = (i as u64)
                .wrapping_add(seed)
                .wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    for _ in 0..iterations {
        let norm = vecops::norm2(&x);
        if norm == 0.0 {
            return 0.0;
        }
        vecops::scale(1.0 / norm, &mut x);
        a.apply(&x, &mut y);
        lambda = vecops::dot(&x, &y);
        std::mem::swap(&mut x, &mut y);
    }
    lambda.abs()
}

/// Estimates the smallest eigenvalue of an SPD operator by inverse power iteration,
/// where each application of `A⁻¹` is computed with CG to a loose tolerance.
pub fn inverse_power_iteration<A: LinearOperator + ?Sized>(
    a: &mut A,
    outer_iterations: usize,
    seed: u64,
) -> f64 {
    let n = a.nrows();
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let mut z = (i as u64)
                .wrapping_add(seed ^ 0xABCD)
                .wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            ((z >> 11) as f64 / (1u64 << 53) as f64) + 0.25
        })
        .collect();
    let cfg = SolverConfig::relative(1e-6)
        .with_max_iterations(2_000)
        .with_trace(false);
    let mut mu = 0.0;
    for _ in 0..outer_iterations {
        let norm = vecops::norm2(&x);
        if norm == 0.0 {
            return 0.0;
        }
        vecops::scale(1.0 / norm, &mut x);
        let solve = cg(a, &x, &cfg);
        // Rayleigh quotient of the inverse: xᵀ A⁻¹ x ≈ 1/λ_min direction.
        mu = vecops::dot(&x, &solve.x);
        x = solve.x;
    }
    if mu <= 0.0 {
        0.0
    } else {
        1.0 / mu
    }
}

/// Estimates both extreme eigenvalues of an SPD operator.
pub fn estimate_extremes<A: LinearOperator + ?Sized>(a: &mut A, seed: u64) -> EigenEstimate {
    let lambda_max = power_iteration(a, 60, seed);
    let lambda_min = inverse_power_iteration(a, 8, seed);
    EigenEstimate {
        lambda_max,
        lambda_min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::generators;

    #[test]
    fn diagonal_matrix_extremes_are_recovered() {
        let mut a = generators::logspace_diagonal(200, 0.5, 128.0).to_csr();
        let est = estimate_extremes(&mut a, 1);
        assert!(
            (est.lambda_max - 128.0).abs() / 128.0 < 0.05,
            "λmax = {}",
            est.lambda_max
        );
        assert!(
            (est.lambda_min - 0.5).abs() / 0.5 < 0.1,
            "λmin = {}",
            est.lambda_min
        );
        let kappa = est.condition_number();
        assert!((kappa - 256.0).abs() / 256.0 < 0.15, "κ = {kappa}");
    }

    #[test]
    fn laplacian_condition_number_is_in_expected_range() {
        // 1D/2D Laplacian eigenvalues are known: for the 2D 5-point stencil on an m×m
        // grid, λ ∈ [8 sin²(π/(2(m+1))), 8 cos²(π/(2(m+1)))] plus the shift.
        let m = 24;
        let shift = 0.05;
        let mut a = generators::laplacian_2d(m, m, shift).to_csr();
        let est = estimate_extremes(&mut a, 7);
        let h = std::f64::consts::PI / (2.0 * (m as f64 + 1.0));
        let expected_max = 8.0 * h.cos().powi(2) + shift;
        let expected_min = 8.0 * h.sin().powi(2) + shift;
        assert!((est.lambda_max - expected_max).abs() / expected_max < 0.05);
        assert!((est.lambda_min - expected_min).abs() / expected_min < 0.15);
    }

    #[test]
    fn power_iteration_handles_zero_operator() {
        let mut a = crate::operator::DiagonalOperator::new(vec![0.0; 10]);
        assert_eq!(power_iteration(&mut a, 5, 3), 0.0);
    }
}
