//! Solver configuration and result types shared by CG and BiCGSTAB.

/// Why a solve terminated.
#[derive(Debug, Clone, PartialEq)]
pub enum StopReason {
    /// The residual criterion was met.
    Converged,
    /// The iteration limit was reached before convergence (the paper's "NC").
    MaxIterations,
    /// A scalar in the recurrence became zero, non-finite, or negative where positivity
    /// is required (e.g. `pᵀAp ≤ 0` in CG); the message names the culprit.
    Breakdown(String),
}

impl StopReason {
    /// `true` when the solve met its residual criterion.
    pub fn converged(&self) -> bool {
        matches!(self, StopReason::Converged)
    }
}

/// Configuration for an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Maximum number of iterations before declaring non-convergence.
    pub max_iterations: usize,
    /// Residual tolerance `τ`; the paper uses `‖r‖₂ < 1e-8`.
    pub tolerance: f64,
    /// If `true`, the tolerance is relative to `‖b‖₂` (i.e. stop when
    /// `‖r‖₂ < τ·‖b‖₂`); if `false` it is the absolute criterion of the paper.
    pub relative: bool,
    /// Record the residual after every iteration (needed for the Fig. 9 traces).
    pub record_trace: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_iterations: 20_000,
            tolerance: 1e-8,
            relative: false,
            record_trace: true,
        }
    }
}

impl SolverConfig {
    /// The paper's convergence criterion: absolute residual below `1e-8`.
    pub fn paper_default() -> Self {
        SolverConfig::default()
    }

    /// A relative-residual variant (`‖r‖ < tol·‖b‖`), the convention used by the
    /// experiment harness so that workloads whose right-hand sides are far from unit
    /// norm remain meaningful.
    pub fn relative(tol: f64) -> Self {
        SolverConfig {
            tolerance: tol,
            relative: true,
            ..SolverConfig::default()
        }
    }

    /// Builder-style setter for the iteration limit.
    pub fn with_max_iterations(mut self, max: usize) -> Self {
        self.max_iterations = max;
        self
    }

    /// Builder-style setter for trace recording.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// The absolute residual threshold for a particular right-hand-side norm.
    pub fn threshold(&self, b_norm: f64) -> f64 {
        if self.relative {
            self.tolerance * b_norm
        } else {
            self.tolerance
        }
    }
}

/// The outcome of an iterative solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The final solution iterate.
    pub x: Vec<f64>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Number of operator applications (SpMVs) performed; CG uses 1 + 1 per iteration,
    /// BiCGSTAB 1 + 2 per iteration.  The accelerator timing model multiplies this by
    /// the per-SpMV latency.
    pub spmv_count: usize,
    /// Final residual 2-norm (as tracked by the solver recurrence).
    pub final_residual: f64,
    /// Residual 2-norm after each iteration (empty if trace recording was disabled).
    pub trace: Vec<f64>,
    /// Why the solve stopped.
    pub stop: StopReason,
}

impl SolveResult {
    /// `true` when the solve met its residual criterion.
    pub fn converged(&self) -> bool {
        self.stop.converged()
    }

    /// Convenience label used by the experiment harness: the iteration count when
    /// converged, or `"NC"` (the paper's notation) otherwise.
    pub fn iterations_label(&self) -> String {
        if self.converged() {
            self.iterations.to_string()
        } else {
            "NC".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_criterion() {
        let c = SolverConfig::paper_default();
        assert_eq!(c.tolerance, 1e-8);
        assert!(!c.relative);
        assert_eq!(c.threshold(123.0), 1e-8);
    }

    #[test]
    fn relative_threshold_scales_with_rhs() {
        let c = SolverConfig::relative(1e-8);
        assert_eq!(c.threshold(100.0), 1e-6);
    }

    #[test]
    fn builders_update_fields() {
        let c = SolverConfig::default()
            .with_max_iterations(7)
            .with_trace(false);
        assert_eq!(c.max_iterations, 7);
        assert!(!c.record_trace);
    }

    #[test]
    fn stop_reason_and_label() {
        assert!(StopReason::Converged.converged());
        assert!(!StopReason::MaxIterations.converged());
        assert!(!StopReason::Breakdown("pAp".into()).converged());

        let ok = SolveResult {
            x: vec![],
            iterations: 42,
            spmv_count: 43,
            final_residual: 1e-9,
            trace: vec![],
            stop: StopReason::Converged,
        };
        assert_eq!(ok.iterations_label(), "42");
        let nc = SolveResult {
            stop: StopReason::MaxIterations,
            ..ok
        };
        assert_eq!(nc.iterations_label(), "NC");
    }
}
