//! Warm-started solves for sequences of closely-related systems.
//!
//! Transient workloads (time-stepping, parameter continuation) solve a chain of
//! systems `Aₖ xₖ = bₖ` where consecutive operators and right-hand sides differ only
//! slightly; the previous solution is then an excellent initial guess for the next
//! step.  The Krylov solvers in this crate deliberately start from `x₀ = 0` — that
//! keeps every one-shot solve bitwise reproducible — so warm starting is layered on
//! top in *correction form*: solve `A·d = b − A·x₀` from zero and return `x₀ + d`.
//! This reuses the existing solvers unchanged and keeps their breakdown detection.
//!
//! The guess is **measured-residual-guarded**: the wrapper spends one operator
//! application on `r₀ = b − A·x₀` and only commits to the warm path when the guess is
//! finite and strictly closer than the zero vector (`‖r₀‖ < ‖b‖`).  Otherwise it falls
//! back to the plain zero-start solve, bitwise identical to never having offered a
//! guess.  The correction solve runs under the *absolute* threshold
//! [`SolverConfig::threshold`]`(‖b‖)` so the stopping criterion — final true residual
//! `‖b − A·x‖` — is the same one the cold solve uses; warm starting changes the
//! iteration count, never the convergence target.
//!
//! [`solve_warm_split`] is the mixed-precision variant for inexact operators: the
//! guess residual is measured on a separate high-precision operator (the host's fp64
//! matrix) while the correction still runs on the inexact one (the quantized chip).
//! Measuring `r₀` through a quantized apply pollutes it at the format's noise floor —
//! a broad-spectrum perturbation far above the stopping threshold that makes the
//! correction *slower* than a cold solve — whereas the fp64 residual of a good guess
//! is small and as smooth as the underlying time step.

use crate::operator::LinearOperator;
use crate::result::{SolveResult, SolverConfig, StopReason};
use crate::SolverKind;
use refloat_sparse::vecops;

/// How a warm-started solve actually ran (for telemetry and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmPath {
    /// No guess was offered (or it had the wrong length); plain zero-start solve.
    Cold,
    /// A guess was offered but failed the residual guard; plain zero-start solve.
    GuardRejected,
    /// The guess already met the convergence criterion; no iterations were run.
    AlreadyConverged,
    /// The guess was accepted and the correction system was solved.
    Correction,
}

impl WarmPath {
    /// `true` when the initial guess was actually used.
    pub fn used(&self) -> bool {
        matches!(self, WarmPath::AlreadyConverged | WarmPath::Correction)
    }
}

/// Outcome of [`solve_warm`]: the solve result plus how the guess fared.
#[derive(Debug, Clone)]
pub struct WarmSolve {
    /// The solve result; `x` is the full solution (guess plus correction on the warm
    /// path), `spmv_count` includes the one residual-guard application when a guess
    /// was offered.
    pub result: SolveResult,
    /// Which path the solve took.
    pub path: WarmPath,
    /// `‖b − A·x₀‖` measured for the guard, when a guess was offered.
    pub initial_residual: Option<f64>,
}

/// Solves `A x = b`, optionally warm-started from `x0`.
///
/// With `x0 = None` this is exactly [`SolverKind::solve`].  With a guess it measures
/// `r₀ = b − A·x₀` (one operator application), rejects non-finite or
/// not-strictly-better guesses (falling back to the zero-start solve), short-circuits
/// when the guess already satisfies the convergence criterion, and otherwise solves
/// the correction system `A·d = r₀` to the same absolute threshold the cold solve
/// would use and returns `x₀ + d`.
///
/// # Panics
/// Panics if operator and right-hand-side dimensions disagree.
pub fn solve_warm<A: LinearOperator + ?Sized>(
    kind: SolverKind,
    a: &mut A,
    b: &[f64],
    x0: Option<&[f64]>,
    config: &SolverConfig,
) -> WarmSolve {
    let n = b.len();
    assert_eq!(
        a.nrows(),
        n,
        "solve_warm: operator rows must match rhs length"
    );
    assert_eq!(a.ncols(), n, "solve_warm: operator must be square");

    let guess = match x0 {
        Some(g) if g.len() == n => g,
        _ => {
            return WarmSolve {
                result: kind.solve(a, b, config),
                path: WarmPath::Cold,
                initial_residual: None,
            }
        }
    };

    // One operator application to measure the guess: r0 = b − A·x0.
    let r0 = guess_residual(a, b, guess);
    warm_from_residual(kind, a, b, guess, r0, config)
}

/// Solves `A x = b` warm-started from `x0`, with the guess residual measured on a
/// *separate* operator.
///
/// Identical to [`solve_warm`] except that the guard application `r₀ = b − R·x₀`
/// runs on `residual_op` — typically the raw fp64 matrix on the host — while the
/// zero-start fallback and the correction solve run on `a` (the chip operator).
/// When `a`'s apply is inexact (quantized), measuring the residual through it
/// drowns a good guess in broad-spectrum quantization noise at the format's floor;
/// the fp64 residual keeps `r₀` small and smooth, so the correction genuinely
/// starts decades ahead of a cold solve.  With `residual_op` exact this also makes
/// [`WarmPath::AlreadyConverged`] a statement about the *true* residual.
///
/// `&CsrMatrix` implements [`LinearOperator`], so a shared borrow of the host
/// matrix can be passed directly: `solve_warm_split(kind, &mut chip, &mut &csr, …)`.
///
/// # Panics
/// Panics if the operators' and right-hand side's dimensions disagree.
pub fn solve_warm_split<A: LinearOperator + ?Sized, R: LinearOperator + ?Sized>(
    kind: SolverKind,
    a: &mut A,
    residual_op: &mut R,
    b: &[f64],
    x0: Option<&[f64]>,
    config: &SolverConfig,
) -> WarmSolve {
    let n = b.len();
    assert_eq!(
        a.nrows(),
        n,
        "solve_warm_split: operator rows must match rhs length"
    );
    assert_eq!(a.ncols(), n, "solve_warm_split: operator must be square");
    assert_eq!(
        residual_op.nrows(),
        n,
        "solve_warm_split: residual operator rows must match rhs length"
    );
    assert_eq!(
        residual_op.ncols(),
        n,
        "solve_warm_split: residual operator must be square"
    );

    let guess = match x0 {
        Some(g) if g.len() == n => g,
        _ => {
            return WarmSolve {
                result: kind.solve(a, b, config),
                path: WarmPath::Cold,
                initial_residual: None,
            }
        }
    };

    let r0 = guess_residual(residual_op, b, guess);
    warm_from_residual(kind, a, b, guess, r0, config)
}

/// One operator application measuring the guess: `r₀ = b − A·x₀`.
fn guess_residual<A: LinearOperator + ?Sized>(a: &mut A, b: &[f64], guess: &[f64]) -> Vec<f64> {
    let mut r0 = vec![0.0; b.len()];
    a.apply(guess, &mut r0);
    for (ri, bi) in r0.iter_mut().zip(b.iter()) {
        *ri = bi - *ri;
    }
    r0
}

/// The guarded warm-start tail shared by [`solve_warm`] and [`solve_warm_split`]:
/// guard, short-circuit, or correction solve on `a` from the measured `r0`.
fn warm_from_residual<A: LinearOperator + ?Sized>(
    kind: SolverKind,
    a: &mut A,
    b: &[f64],
    guess: &[f64],
    r0: Vec<f64>,
    config: &SolverConfig,
) -> WarmSolve {
    let r0_norm = vecops::norm2(&r0);
    let b_norm = vecops::norm2(b);
    let threshold = config.threshold(b_norm);

    if !r0_norm.is_finite() || r0_norm >= b_norm {
        // The guess is no better than starting from zero; run the plain solve so the
        // result is bitwise identical to never having offered a guess.
        let mut result = kind.solve(a, b, config);
        result.spmv_count += 1;
        return WarmSolve {
            result,
            path: WarmPath::GuardRejected,
            initial_residual: Some(r0_norm),
        };
    }

    if r0_norm < threshold {
        let trace = if config.record_trace {
            vec![r0_norm]
        } else {
            Vec::new()
        };
        return WarmSolve {
            result: SolveResult {
                x: guess.to_vec(),
                iterations: 0,
                spmv_count: 1,
                final_residual: r0_norm,
                trace,
                stop: StopReason::Converged,
            },
            path: WarmPath::AlreadyConverged,
            initial_residual: Some(r0_norm),
        };
    }

    // Correction solve A·d = r0 under the *absolute* threshold of the original
    // system, so ‖b − A·(x0+d)‖ = ‖r0 − A·d‖ meets the same criterion a cold solve
    // targets.
    let correction_config = SolverConfig {
        tolerance: threshold,
        relative: false,
        ..config.clone()
    };
    let mut result = kind.solve(a, &r0, &correction_config);
    for (xi, gi) in result.x.iter_mut().zip(guess.iter()) {
        *xi += gi;
    }
    result.spmv_count += 1;
    WarmSolve {
        result,
        path: WarmPath::Correction,
        initial_residual: Some(r0_norm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::transient::{TransientChain, TransientSpec};
    use refloat_sparse::{CooMatrix, CsrMatrix};

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0);
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
                a.push(i + 1, i, -1.0);
            }
        }
        a.to_csr()
    }

    #[test]
    fn no_guess_is_bitwise_identical_to_plain_solve() {
        let mut a = laplacian_1d(64);
        let b = vec![1.0; 64];
        let config = SolverConfig::relative(1e-10);
        let cold = SolverKind::Cg.solve(&mut a, &b, &config);
        let warm = solve_warm(SolverKind::Cg, &mut a, &b, None, &config);
        assert_eq!(warm.path, WarmPath::Cold);
        assert_eq!(warm.initial_residual, None);
        assert_eq!(warm.result.iterations, cold.iterations);
        assert!(warm
            .result
            .x
            .iter()
            .zip(cold.x.iter())
            .all(|(w, c)| w.to_bits() == c.to_bits()));
    }

    #[test]
    fn hopeless_guess_is_rejected_and_falls_back_to_the_cold_solution() {
        let mut a = laplacian_1d(64);
        let b = vec![1.0; 64];
        let config = SolverConfig::relative(1e-10);
        let cold = SolverKind::Cg.solve(&mut a, &b, &config);
        let bad = vec![1.0e6; 64];
        let warm = solve_warm(SolverKind::Cg, &mut a, &b, Some(&bad), &config);
        assert_eq!(warm.path, WarmPath::GuardRejected);
        assert!(warm.initial_residual.unwrap() >= vecops::norm2(&b));
        // Fallback is the plain zero-start solve, bit for bit, plus the one guard SpMV.
        assert_eq!(warm.result.spmv_count, cold.spmv_count + 1);
        assert!(warm
            .result
            .x
            .iter()
            .zip(cold.x.iter())
            .all(|(w, c)| w.to_bits() == c.to_bits()));
    }

    #[test]
    fn exact_guess_converges_in_zero_iterations() {
        let mut a = laplacian_1d(48);
        let b = vec![1.0; 48];
        let config = SolverConfig::relative(1e-10);
        let exact = SolverKind::Cg.solve(&mut a, &b, &config).x;
        let warm = solve_warm(SolverKind::Cg, &mut a, &b, Some(&exact), &config);
        assert_eq!(warm.path, WarmPath::AlreadyConverged);
        assert_eq!(warm.result.iterations, 0);
        assert!(warm.result.converged());
        assert!(warm
            .result
            .x
            .iter()
            .zip(exact.iter())
            .all(|(w, c)| w.to_bits() == c.to_bits()));
    }

    #[test]
    fn warm_solution_meets_the_same_true_residual_criterion() {
        let mut a = laplacian_1d(96);
        let b: Vec<f64> = (0..96).map(|i| 1.0 + 0.01 * i as f64).collect();
        let config = SolverConfig::relative(1e-9);
        let threshold = config.threshold(vecops::norm2(&b));
        // A decent but inexact guess: the exact solution with a small smooth
        // perturbation, so the guard residual sits strictly between the convergence
        // threshold and ‖b‖.
        let mut guess = SolverKind::Cg.solve(&mut a, &b, &config).x;
        for (i, gi) in guess.iter_mut().enumerate() {
            *gi += 1e-4 * (0.2 * i as f64).sin();
        }
        let warm = solve_warm(SolverKind::Cg, &mut a, &b, Some(&guess), &config);
        assert_eq!(warm.path, WarmPath::Correction);
        assert!(warm.result.converged());
        let mut ax = vec![0.0; 96];
        a.spmv_into(&warm.result.x, &mut ax);
        let true_res: f64 = vecops::norm2(
            &b.iter()
                .zip(ax.iter())
                .map(|(bi, yi)| bi - yi)
                .collect::<Vec<_>>(),
        );
        assert!(
            true_res <= threshold * (1.0 + 1e-12),
            "{true_res} vs {threshold}"
        );
    }

    #[test]
    fn split_with_the_same_operator_is_bitwise_identical_to_solve_warm() {
        let mut a = laplacian_1d(64);
        let b: Vec<f64> = (0..64).map(|i| 1.0 + 0.02 * i as f64).collect();
        let config = SolverConfig::relative(1e-9);
        let mut guess = SolverKind::Cg.solve(&mut a, &b, &config).x;
        for (i, gi) in guess.iter_mut().enumerate() {
            *gi += 1e-4 * (0.3 * i as f64).cos();
        }
        let warm = solve_warm(SolverKind::Cg, &mut a, &b, Some(&guess), &config);
        let mut chip = laplacian_1d(64);
        let csr = laplacian_1d(64);
        let split = solve_warm_split(
            SolverKind::Cg,
            &mut chip,
            &mut &csr,
            &b,
            Some(&guess),
            &config,
        );
        assert_eq!(split.path, warm.path);
        assert_eq!(split.result.iterations, warm.result.iterations);
        assert!(split
            .result
            .x
            .iter()
            .zip(warm.result.x.iter())
            .all(|(s, w)| s.to_bits() == w.to_bits()));
    }

    /// A deterministic stand-in for the quantized chip: exact SpMV plus a smooth
    /// multiplicative output perturbation well above the solver threshold.
    struct NoisyOperator {
        csr: CsrMatrix,
        relative_noise: f64,
    }

    impl LinearOperator for NoisyOperator {
        fn nrows(&self) -> usize {
            self.csr.nrows()
        }

        fn ncols(&self) -> usize {
            self.csr.ncols()
        }

        fn apply(&mut self, x: &[f64], y: &mut [f64]) {
            self.csr.spmv_into(x, y);
            for (i, yi) in y.iter_mut().enumerate() {
                *yi *= 1.0 + self.relative_noise * (0.7 * i as f64).sin();
            }
        }
    }

    #[test]
    fn split_sees_through_an_inexact_operators_noise_floor() {
        let n = 64;
        let csr = laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + 0.02 * i as f64).collect();
        let config = SolverConfig::relative(1e-6).with_max_iterations(2_000);
        let exact = SolverKind::Cg.solve(&mut laplacian_1d(n), &b, &config).x;

        // Measured through the noisy operator, an (essentially) exact guess looks
        // ~1e-3 away from convergence; measured in fp64 it is already converged.
        let mut noisy = NoisyOperator {
            csr: laplacian_1d(n),
            relative_noise: 1e-3,
        };
        let polluted = solve_warm(SolverKind::Cg, &mut noisy, &b, Some(&exact), &config);
        assert_eq!(polluted.path, WarmPath::Correction);
        let mut noisy = NoisyOperator {
            csr: laplacian_1d(n),
            relative_noise: 1e-3,
        };
        let split = solve_warm_split(
            SolverKind::Cg,
            &mut noisy,
            &mut &csr,
            &b,
            Some(&exact),
            &config,
        );
        assert_eq!(split.path, WarmPath::AlreadyConverged);
        assert_eq!(split.result.iterations, 0);
        assert!(split.initial_residual.unwrap() < polluted.initial_residual.unwrap());
    }

    #[test]
    fn warm_start_never_increases_iterations_on_an_spd_time_step_chain() {
        let base = refloat_matgen::fem::poisson_2d(13, 11, 0.15, 7);
        let spec = TransientSpec::default()
            .with_steps(12)
            .with_seed(41)
            .with_drift(0.03, 0.25)
            .with_mass(0.6, 0.1);
        let config = SolverConfig::relative(1e-8);
        let mut previous: Option<Vec<f64>> = None;
        let mut warm_hits = 0usize;
        for step in TransientChain::new(base, spec) {
            let mut cold_op = step.matrix.clone();
            let cold = SolverKind::Cg.solve(&mut cold_op, &step.rhs, &config);
            let mut warm_op = step.matrix.clone();
            let warm = solve_warm(
                SolverKind::Cg,
                &mut warm_op,
                &step.rhs,
                previous.as_deref(),
                &config,
            );
            assert!(cold.converged() && warm.result.converged());
            assert!(
                warm.result.iterations <= cold.iterations,
                "step {}: warm {} > cold {}",
                step.index,
                warm.result.iterations,
                cold.iterations
            );
            if warm.path.used() {
                warm_hits += 1;
            }
            previous = Some(warm.result.x.clone());
        }
        // Every step after the first should have benefited from the previous solution.
        assert!(warm_hits >= 11, "only {warm_hits} warm hits");
    }
}
