//! The operator abstraction the solvers are written against.

use refloat_sparse::{BlockedMatrix, CsrMatrix};

/// A square (or rectangular) linear operator `y = A·x`.
///
/// `apply` takes `&mut self` so that operators with internal state — iteration-dependent
/// vector quantization (ReFloat's vector converter), analog noise generators, or
/// instrumentation counters — do not need interior mutability.
pub trait LinearOperator {
    /// Number of rows of the operator (length of the output vector).
    fn nrows(&self) -> usize;

    /// Number of columns of the operator (length of the input vector).
    fn ncols(&self) -> usize;

    /// Computes `y ← A·x`.
    ///
    /// Implementations must not assume anything about the prior contents of `y`.
    fn apply(&mut self, x: &[f64], y: &mut [f64]);

    /// Batched multi-RHS SpMV: `Y ← A·X` column by column (`X` given as `k` vectors of
    /// length `ncols`).
    ///
    /// The default loops [`apply`](Self::apply), so every operator gets the batched
    /// entry point for free and each column is bitwise identical to a standalone
    /// apply; operators with expensive per-apply setup (chip programming, sharded
    /// thread pools) override it to amortize that setup across the batch.
    ///
    /// # Panics
    /// Panics if `xs` and `ys` have different lengths.
    fn apply_batch(&mut self, xs: &[Vec<f64>], ys: &mut [Vec<f64>]) {
        assert_eq!(xs.len(), ys.len(), "apply_batch: X/Y column count mismatch");
        for (x, y) in xs.iter().zip(ys.iter_mut()) {
            self.apply(x, y);
        }
    }

    /// A short human-readable description used in experiment logs.
    fn name(&self) -> String {
        "operator".to_string()
    }
}

impl LinearOperator for CsrMatrix {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.spmv_into(x, y);
    }

    fn name(&self) -> String {
        format!(
            "csr-fp64 ({}x{}, nnz {})",
            CsrMatrix::nrows(self),
            CsrMatrix::ncols(self),
            self.nnz()
        )
    }
}

/// A shared CSR reference is itself an operator: `spmv_into` needs only `&self`,
/// so a `&CsrMatrix` can serve as the high-precision residual operator of
/// [`solve_warm_split`](crate::solve_warm_split) without cloning the matrix.
impl LinearOperator for &CsrMatrix {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.spmv_into(x, y);
    }

    fn name(&self) -> String {
        format!(
            "csr-fp64 ({}x{}, nnz {})",
            CsrMatrix::nrows(self),
            CsrMatrix::ncols(self),
            self.nnz()
        )
    }
}

impl LinearOperator for BlockedMatrix {
    fn nrows(&self) -> usize {
        BlockedMatrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        BlockedMatrix::ncols(self)
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.spmv_into(x, y);
    }

    fn name(&self) -> String {
        format!(
            "blocked-fp64 (b = {}, {} blocks)",
            self.b(),
            self.num_blocks()
        )
    }
}

/// Wraps an operator and counts how many times it is applied — the solver-time model
/// multiplies this count by the per-SpMV latency of each platform.
pub struct OperatorStats<A> {
    inner: A,
    applies: usize,
}

impl<A: LinearOperator> OperatorStats<A> {
    /// Wraps `inner` with an application counter starting at zero.
    pub fn new(inner: A) -> Self {
        OperatorStats { inner, applies: 0 }
    }

    /// Number of `apply` calls so far.
    pub fn applies(&self) -> usize {
        self.applies
    }

    /// Consumes the wrapper and returns the inner operator.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// Borrows the inner operator.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: LinearOperator> LinearOperator for OperatorStats<A> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.applies += 1;
        self.inner.apply(x, y);
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

/// A diagonal operator, mostly useful in tests (its solves have closed-form answers).
#[derive(Debug, Clone)]
pub struct DiagonalOperator {
    diag: Vec<f64>,
}

impl DiagonalOperator {
    /// Creates the operator `diag(d)`.
    pub fn new(diag: Vec<f64>) -> Self {
        DiagonalOperator { diag }
    }

    /// The diagonal entries.
    pub fn diagonal(&self) -> &[f64] {
        &self.diag
    }
}

impl LinearOperator for DiagonalOperator {
    fn nrows(&self) -> usize {
        self.diag.len()
    }

    fn ncols(&self) -> usize {
        self.diag.len()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        for ((yi, xi), di) in y.iter_mut().zip(x.iter()).zip(self.diag.iter()) {
            *yi = di * xi;
        }
    }

    fn name(&self) -> String {
        format!("diagonal ({})", self.diag.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_sparse::CooMatrix;

    fn small_csr() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 2, 4.0);
        coo.push(0, 1, 1.0);
        coo.to_csr()
    }

    #[test]
    fn csr_operator_applies_spmv() {
        let mut a = small_csr();
        let mut y = vec![0.0; 3];
        LinearOperator::apply(&mut a, &[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 3.0, 4.0]);
        assert!(a.name().contains("csr-fp64"));
    }

    #[test]
    fn blocked_operator_matches_csr() {
        let csr = small_csr();
        let mut blocked = BlockedMatrix::from_csr(&csr, 1).unwrap();
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        let mut csr_mut = csr.clone();
        LinearOperator::apply(&mut csr_mut, &[1.0, 2.0, 3.0], &mut y1);
        LinearOperator::apply(&mut blocked, &[1.0, 2.0, 3.0], &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn operator_stats_counts_applications() {
        let mut wrapped = OperatorStats::new(small_csr());
        let mut y = vec![0.0; 3];
        for _ in 0..5 {
            wrapped.apply(&[1.0, 0.0, 0.0], &mut y);
        }
        assert_eq!(wrapped.applies(), 5);
        assert_eq!(wrapped.nrows(), 3);
    }

    #[test]
    fn diagonal_operator_scales_elementwise() {
        let mut d = DiagonalOperator::new(vec![1.0, 2.0, 3.0]);
        let mut y = vec![0.0; 3];
        d.apply(&[5.0, 5.0, 5.0], &mut y);
        assert_eq!(y, vec![5.0, 10.0, 15.0]);
        assert_eq!(d.diagonal(), &[1.0, 2.0, 3.0]);
    }
}
