//! Conjugate Gradient (CG) — Hestenes & Stiefel, the first Krylov solver evaluated in
//! the paper.
//!
//! CG performs exactly one operator application per iteration (plus one for the initial
//! residual), which is the `1 SpMV / iteration` count the paper's performance model uses
//! for the CG rows of Fig. 8.

use crate::operator::LinearOperator;
use crate::result::{SolveResult, SolverConfig, StopReason};
use refloat_sparse::vecops;

/// Solves `A x = b` with plain (unpreconditioned) CG starting from `x₀ = 0`.
///
/// The operator only has to be symmetric positive definite *approximately*: the
/// quantized ReFloat operators are slight perturbations of an SPD matrix and CG is run
/// on them exactly as the paper does, with breakdown detection guarding against loss of
/// positive definiteness.
pub fn cg<A: LinearOperator + ?Sized>(a: &mut A, b: &[f64], config: &SolverConfig) -> SolveResult {
    pcg(a, b, None, config)
}

/// Solves `A x = b` with CG, optionally applying a diagonal (Jacobi) preconditioner
/// given as the vector of inverse diagonal entries `m⁻¹` (see [`crate::jacobi`]).
///
/// # Panics
/// Panics if dimensions of `a`, `b` and the preconditioner disagree.
pub fn pcg<A: LinearOperator + ?Sized>(
    a: &mut A,
    b: &[f64],
    inv_diag: Option<&[f64]>,
    config: &SolverConfig,
) -> SolveResult {
    let n = b.len();
    assert_eq!(a.nrows(), n, "cg: operator rows must match rhs length");
    assert_eq!(a.ncols(), n, "cg: operator must be square");
    if let Some(m) = inv_diag {
        assert_eq!(m.len(), n, "cg: preconditioner length must match rhs");
    }

    let threshold = config.threshold(vecops::norm2(b));
    let mut trace = Vec::new();

    let mut x = vec![0.0; n];
    // x0 = 0, so r0 = b.
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    apply_prec(inv_diag, &r, &mut z);
    let mut p = z.clone();
    let mut ap = vec![0.0; n];
    let mut spmv_count = 0usize;

    let mut rz_old = vecops::dot(&r, &z);
    let mut res_norm = vecops::norm2(&r);
    if config.record_trace {
        trace.push(res_norm);
    }
    if res_norm < threshold {
        return SolveResult {
            x,
            iterations: 0,
            spmv_count,
            final_residual: res_norm,
            trace,
            stop: StopReason::Converged,
        };
    }

    for k in 1..=config.max_iterations {
        a.apply(&p, &mut ap);
        spmv_count += 1;

        let p_ap = vecops::dot(&p, &ap);
        if !p_ap.is_finite() || p_ap <= 0.0 {
            return SolveResult {
                x,
                iterations: k,
                spmv_count,
                final_residual: res_norm,
                trace,
                stop: StopReason::Breakdown(format!("pᵀAp = {p_ap} is not positive")),
            };
        }
        let alpha = rz_old / p_ap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);

        res_norm = vecops::norm2(&r);
        if config.record_trace {
            trace.push(res_norm);
        }
        if !res_norm.is_finite() {
            return SolveResult {
                x,
                iterations: k,
                spmv_count,
                final_residual: res_norm,
                trace,
                stop: StopReason::Breakdown("residual norm is not finite".into()),
            };
        }
        if res_norm < threshold {
            return SolveResult {
                x,
                iterations: k,
                spmv_count,
                final_residual: res_norm,
                trace,
                stop: StopReason::Converged,
            };
        }

        apply_prec(inv_diag, &r, &mut z);
        let rz_new = vecops::dot(&r, &z);
        if rz_new == 0.0 || !rz_new.is_finite() {
            return SolveResult {
                x,
                iterations: k,
                spmv_count,
                final_residual: res_norm,
                trace,
                stop: StopReason::Breakdown(format!("rᵀz = {rz_new}")),
            };
        }
        let beta = rz_new / rz_old;
        vecops::xpby(&z, beta, &mut p);
        rz_old = rz_new;
    }

    SolveResult {
        x,
        iterations: config.max_iterations,
        spmv_count,
        final_residual: res_norm,
        trace,
        stop: StopReason::MaxIterations,
    }
}

fn apply_prec(inv_diag: Option<&[f64]>, r: &[f64], z: &mut [f64]) {
    match inv_diag {
        None => z.copy_from_slice(r),
        Some(m) => {
            for ((zi, ri), mi) in z.iter_mut().zip(r.iter()).zip(m.iter()) {
                *zi = ri * mi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::DiagonalOperator;
    use refloat_matgen::generators;
    use refloat_sparse::CsrMatrix;

    fn solve_reference(a: &CsrMatrix, b: &[f64], config: &SolverConfig) -> SolveResult {
        let mut op = a.clone();
        cg(&mut op, b, config)
    }

    #[test]
    fn solves_diagonal_system_in_one_iteration_per_distinct_eigenvalue() {
        let mut a = DiagonalOperator::new(vec![2.0; 50]);
        let b = vec![4.0; 50];
        let r = cg(&mut a, &b, &SolverConfig::default());
        assert!(r.converged());
        assert!(r.iterations <= 2);
        for xi in &r.x {
            assert!((xi - 2.0).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_laplacian_to_requested_tolerance() {
        let a = generators::laplacian_2d(20, 20, 0.2).to_csr();
        let x_star: Vec<f64> = (0..a.nrows())
            .map(|i| ((i % 17) as f64 - 8.0) / 8.0)
            .collect();
        let b = a.spmv(&x_star);
        let cfg = SolverConfig::relative(1e-10);
        let r = solve_reference(&a, &b, &cfg);
        assert!(r.converged(), "stop = {:?}", r.stop);
        assert!(vecops::rel_err(&r.x, &x_star) < 1e-7);
        // True residual agrees with the recursive residual to reasonable accuracy.
        let mut true_r = a.spmv(&r.x);
        for (ri, bi) in true_r.iter_mut().zip(b.iter()) {
            *ri = bi - *ri;
        }
        assert!(vecops::norm2(&true_r) < 1e-8 * vecops::norm2(&b) * 10.0);
    }

    #[test]
    fn iteration_count_grows_with_condition_number() {
        let well = generators::logspace_diagonal(400, 1.0, 10.0).to_csr();
        let ill = generators::logspace_diagonal(400, 1.0, 1e4).to_csr();
        let b = vec![1.0; 400];
        let cfg = SolverConfig::relative(1e-10);
        let rw = solve_reference(&well, &b, &cfg);
        let ri = solve_reference(&ill, &b, &cfg);
        assert!(rw.converged() && ri.converged());
        assert!(
            ri.iterations > 2 * rw.iterations,
            "ill-conditioned {} vs well-conditioned {}",
            ri.iterations,
            rw.iterations
        );
    }

    #[test]
    fn jacobi_preconditioning_helps_badly_scaled_systems() {
        let a = generators::logspace_diagonal(300, 1e-6, 1.0).to_csr();
        let b: Vec<f64> = (0..300).map(|i| (i as f64 * 0.1).sin()).collect();
        let cfg = SolverConfig::relative(1e-10).with_max_iterations(5000);
        let plain = solve_reference(&a, &b, &cfg);
        let inv_diag: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
        let mut op = a.clone();
        let pre = pcg(&mut op, &b, Some(&inv_diag), &cfg);
        assert!(pre.converged());
        // Jacobi makes a diagonal system converge immediately; plain CG needs many more.
        assert!(pre.iterations <= 2);
        assert!(plain.iterations > pre.iterations);
    }

    #[test]
    fn respects_iteration_limit_and_reports_nc() {
        let a = generators::logspace_diagonal(500, 1.0, 1e8).to_csr();
        let b = vec![1.0; 500];
        let cfg = SolverConfig::relative(1e-12).with_max_iterations(3);
        let r = solve_reference(&a, &b, &cfg);
        assert!(!r.converged());
        assert_eq!(r.iterations, 3);
        assert_eq!(r.stop, StopReason::MaxIterations);
        assert_eq!(r.iterations_label(), "NC");
    }

    #[test]
    fn trace_is_monotone_for_spd_diagonal_and_has_iteration_length() {
        let a = generators::laplacian_2d(10, 10, 0.5).to_csr();
        let b = vec![1.0; 100];
        let cfg = SolverConfig::relative(1e-10);
        let r = solve_reference(&a, &b, &cfg);
        assert!(r.converged());
        assert_eq!(r.trace.len(), r.iterations + 1); // includes the initial residual
        assert!(r.trace.last().unwrap() < &r.trace[0]);
    }

    #[test]
    fn spmv_count_is_one_per_iteration() {
        let a = generators::laplacian_2d(12, 12, 0.3).to_csr();
        let b = vec![1.0; 144];
        let r = solve_reference(&a, &b, &SolverConfig::relative(1e-9));
        assert_eq!(r.spmv_count, r.iterations);
    }

    #[test]
    fn breakdown_on_indefinite_operator() {
        // A negative-definite diagonal makes pᵀAp < 0 on the first iteration.
        let mut a = DiagonalOperator::new(vec![-1.0; 10]);
        let b = vec![1.0; 10];
        let r = cg(&mut a, &b, &SolverConfig::default());
        assert!(matches!(r.stop, StopReason::Breakdown(_)));
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = generators::laplacian_2d(5, 5, 0.1).to_csr();
        let r = solve_reference(&a, &[0.0; 25], &SolverConfig::default());
        assert!(r.converged());
        assert_eq!(r.iterations, 0);
        assert!(r.x.iter().all(|&v| v == 0.0));
    }
}
