//! Mixed-precision iterative refinement (defect correction) around a low-precision
//! inner solver.
//!
//! The paper's premise is that low-bit ReFloat operators keep Krylov solvers
//! converging; Le Gallo et al.'s *Mixed-Precision In-Memory Computing* shows the
//! production-grade form of that idea: run the cheap low-precision operator in the
//! inner loop and recover full fp64 accuracy with an outer refinement loop.  This
//! module implements that outer loop over any inner solver:
//!
//! ```text
//! x ← 0
//! repeat
//!     r ← b − A·x            (exact, fp64)
//!     solve  Ã·d ≈ r         (low precision: CG/BiCGSTAB on a quantized operator)
//!     x ← x + d              (fp64 accumulation)
//! until ‖r‖ ≤ target·‖b‖
//! ```
//!
//! Because the residual and the solution accumulate in fp64, the attainable accuracy
//! is set by fp64 — not by the inner format — as long as each outer pass contracts the
//! residual at all.  When an inner format is *too* coarse to contract (the pass
//! "stalls"), the driver escalates to the next rung of a [`PrecisionLadder`] —
//! typically a widened `ReFloat(b, e, f)` format, with full fp64 as the final rung —
//! so every solve either converges to the fp64 target or honestly reports
//! [`RefinementStop::Stalled`] at the top of the ladder.
//!
//! The driver is deliberately generic: it only needs an exact [`LinearOperator`] for
//! the fp64 residual and a [`PrecisionLadder`] for the inner solves, so the quantized
//! operators of `refloat-core`, the cache-backed ladders of `refloat-runtime`, and
//! plain test operators all plug in unchanged.

use crate::operator::LinearOperator;
use crate::result::{SolveResult, SolverConfig, StopReason};
use crate::warm::WarmPath;
use crate::SolverKind;
use refloat_sparse::vecops;

/// A ladder of inner solvers at increasing precision.
///
/// Level 0 is the cheapest (coarsest) rung; the refinement driver walks upward only
/// when a rung stops contracting the outer residual.  Implementations own whatever
/// operator state each rung needs (encoded matrices, caches, scratch buffers).
pub trait PrecisionLadder {
    /// Number of rungs; must be at least 1.
    fn levels(&self) -> usize;

    /// Human-readable name of a rung (used in reports and telemetry).
    fn level_name(&self, level: usize) -> String;

    /// Runs the inner solver at `level` on `rhs` (from `x₀ = 0`), returning the
    /// correction-solve result.
    fn solve(&mut self, level: usize, rhs: &[f64], config: &SolverConfig) -> SolveResult;
}

/// The simplest [`PrecisionLadder`]: a vector of ready-made operators (coarsest
/// first), all solved with the same Krylov method.
///
/// Heterogeneous rungs are the point — e.g. two quantized operators at widening bit
/// widths followed by the exact fp64 matrix — hence the boxed trait objects.
pub struct OperatorLadder {
    rungs: Vec<Box<dyn LinearOperator + Send>>,
    solver: SolverKind,
}

impl OperatorLadder {
    /// An empty ladder solving every rung with `solver`.
    pub fn new(solver: SolverKind) -> Self {
        OperatorLadder {
            rungs: Vec::new(),
            solver,
        }
    }

    /// Builder: append the next-finer rung.
    pub fn with_rung(mut self, op: Box<dyn LinearOperator + Send>) -> Self {
        self.rungs.push(op);
        self
    }

    /// Appends the next-finer rung.
    pub fn push(&mut self, op: Box<dyn LinearOperator + Send>) {
        self.rungs.push(op);
    }
}

impl PrecisionLadder for OperatorLadder {
    fn levels(&self) -> usize {
        self.rungs.len()
    }

    fn level_name(&self, level: usize) -> String {
        self.rungs[level].name()
    }

    fn solve(&mut self, level: usize, rhs: &[f64], config: &SolverConfig) -> SolveResult {
        self.solver.solve(&mut *self.rungs[level], rhs, config)
    }
}

/// Knobs of the outer refinement loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementConfig {
    /// Target relative residual `‖b − A·x‖₂ / ‖b‖₂` of the *outer* (fp64) loop.
    pub target: f64,
    /// Maximum outer passes before declaring non-convergence.
    pub max_outer: usize,
    /// Configuration of each inner correction solve.  Its tolerance is interpreted
    /// relative to the pass residual (the driver forces `relative = true`), so inner
    /// solves need far fewer digits than `target` — that is the entire economy of
    /// mixed precision.
    pub inner: SolverConfig,
    /// A pass must shrink the outer residual by at least this factor
    /// (`after < min_reduction · before`), otherwise it counts as a stall and the
    /// driver escalates to the next rung.
    pub min_reduction: f64,
    /// Record per-pass details in [`RefinementResult::passes`].
    pub record_passes: bool,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        RefinementConfig {
            target: 1e-12,
            max_outer: 40,
            inner: SolverConfig::relative(1e-6)
                .with_max_iterations(5_000)
                .with_trace(false),
            min_reduction: 0.5,
            record_passes: true,
        }
    }
}

impl RefinementConfig {
    /// A config targeting the given outer relative residual.
    pub fn to_target(target: f64) -> Self {
        RefinementConfig {
            target,
            ..RefinementConfig::default()
        }
    }

    /// Builder-style setter for the outer pass cap.
    pub fn with_max_outer(mut self, max_outer: usize) -> Self {
        self.max_outer = max_outer;
        self
    }

    /// Builder-style setter for the inner solve configuration.
    pub fn with_inner(mut self, inner: SolverConfig) -> Self {
        self.inner = inner;
        self
    }

    /// Builder-style setter for the stall threshold.
    pub fn with_min_reduction(mut self, min_reduction: f64) -> Self {
        self.min_reduction = min_reduction;
        self
    }
}

/// Why the refinement loop terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefinementStop {
    /// The outer residual criterion was met.
    Converged,
    /// The top rung of the ladder stopped contracting the residual.
    Stalled,
    /// The outer pass limit was reached first.
    MaxOuter,
}

impl RefinementStop {
    /// `true` when the outer residual criterion was met.
    pub fn converged(&self) -> bool {
        matches!(self, RefinementStop::Converged)
    }
}

/// One outer pass: which rung ran, what it cost, what it achieved.
#[derive(Debug, Clone)]
pub struct RefinementPass {
    /// Rung the correction was solved on.
    pub level: usize,
    /// The rung's name.
    pub level_name: String,
    /// Inner solver iterations of this pass.
    pub inner_iterations: usize,
    /// Inner operator applications of this pass.
    pub inner_spmvs: usize,
    /// Why the inner solve stopped.
    pub inner_stop: StopReason,
    /// Outer relative residual before the pass.
    pub residual_before: f64,
    /// Outer relative residual after the pass (after a rejected pass this equals
    /// `residual_before`: the correction was rolled back).
    pub residual_after: f64,
    /// Whether the correction was rolled back (it grew the residual or produced
    /// non-finite values).
    pub rejected: bool,
    /// Whether the driver escalated to the next rung after this pass.
    pub escalated: bool,
}

/// The outcome of a refinement solve.
#[derive(Debug, Clone)]
pub struct RefinementResult {
    /// How the initial guess fared ([`WarmPath::Cold`] when none was offered; see
    /// [`refine_warm`]).
    pub warm_path: WarmPath,
    /// `‖b − A·x₀‖₂` measured in fp64 for the guard, when a guess was offered.
    pub initial_residual: Option<f64>,
    /// The final (fp64-accumulated) solution iterate.
    pub x: Vec<f64>,
    /// Outer passes executed.
    pub outer_iterations: usize,
    /// Total inner solver iterations across all passes.
    pub inner_iterations: usize,
    /// Total inner operator applications across all passes.
    pub inner_spmvs: usize,
    /// Exact fp64 operator applications (one per outer residual evaluation).
    pub fp64_spmvs: usize,
    /// Rungs skipped due to stalls (0 = the base format was enough).
    pub escalations: usize,
    /// The rung the loop ended on.
    pub final_level: usize,
    /// Final outer relative residual `‖b − A·x‖₂ / ‖b‖₂`.
    pub final_relative_residual: f64,
    /// Final outer absolute residual `‖b − A·x‖₂`.
    pub final_residual: f64,
    /// Per-pass details (empty unless [`RefinementConfig::record_passes`]).
    pub passes: Vec<RefinementPass>,
    /// Why the loop stopped.
    pub stop: RefinementStop,
}

impl RefinementResult {
    /// `true` when the outer residual criterion was met.
    pub fn converged(&self) -> bool {
        self.stop.converged()
    }

    /// Collapses the refined solve into the [`SolveResult`] shape the rest of the
    /// stack (runtime telemetry, experiment tables) consumes: iterations are the total
    /// inner iterations, the trace is the outer residual history, and the stop reason
    /// maps `Stalled` to a labelled breakdown.
    pub fn into_solve_result(self) -> SolveResult {
        let stop = match self.stop {
            RefinementStop::Converged => StopReason::Converged,
            RefinementStop::MaxOuter => StopReason::MaxIterations,
            RefinementStop::Stalled => StopReason::Breakdown(format!(
                "refinement stalled at rung {} with relative residual {:.3e}",
                self.final_level, self.final_relative_residual
            )),
        };
        let mut trace: Vec<f64> = Vec::with_capacity(self.passes.len() + 1);
        if let Some(first) = self.passes.first() {
            trace.push(first.residual_before);
        }
        trace.extend(self.passes.iter().map(|p| p.residual_after));
        SolveResult {
            x: self.x,
            iterations: self.inner_iterations,
            spmv_count: self.inner_spmvs + self.fp64_spmvs,
            final_residual: self.final_residual,
            trace,
            stop,
        }
    }
}

/// Solves `A x = b` to fp64 accuracy by defect correction: exact fp64 residuals
/// around low-precision correction solves drawn from `ladder`, escalating rungs when
/// passes stall.  See the module docs for the loop and its guarantees.
///
/// `a_fp64` must be the *exact* operator (the fp64 ground truth the quantized rungs
/// approximate); it is applied once per outer pass.
///
/// # Panics
/// Panics if the ladder is empty, if dimensions disagree, or if the configuration is
/// degenerate (`target <= 0`, `min_reduction` outside `(0, 1]`).
pub fn refine<A, L>(
    a_fp64: &mut A,
    b: &[f64],
    ladder: &mut L,
    config: &RefinementConfig,
) -> RefinementResult
where
    A: LinearOperator + ?Sized,
    L: PrecisionLadder + ?Sized,
{
    refine_warm(a_fp64, b, None, ladder, config)
}

/// [`refine`] warm-started from an initial guess, with the same guard semantics as
/// [`solve_warm`](crate::solve_warm): one exact fp64 application measures
/// `r₀ = b − A·x₀`; a finite, strictly-better-than-zero guess becomes the starting
/// iterate (the outer loop is defect correction already, so no separate correction
/// system is needed), anything else falls back to the zero start bitwise identically
/// to never having offered a guess.
///
/// Because the guard residual is *exact*, warm starting composes cleanly with the
/// quantized ladder: a guess carried over from the previous step of a transient
/// chain typically starts the outer loop several decades below `‖b‖`, skipping most
/// of the cold solve's passes — and [`WarmPath::AlreadyConverged`] (zero passes) is
/// a statement about the true fp64 residual.
///
/// # Panics
/// Panics under the same conditions as [`refine`].
pub fn refine_warm<A, L>(
    a_fp64: &mut A,
    b: &[f64],
    x0: Option<&[f64]>,
    ladder: &mut L,
    config: &RefinementConfig,
) -> RefinementResult
where
    A: LinearOperator + ?Sized,
    L: PrecisionLadder + ?Sized,
{
    let n = b.len();
    assert_eq!(a_fp64.nrows(), n, "refine: operator rows must match rhs");
    assert_eq!(a_fp64.ncols(), n, "refine: operator must be square");
    assert!(ladder.levels() >= 1, "refine: ladder must have a rung");
    assert!(
        config.target > 0.0 && config.target.is_finite(),
        "refine: target must be a positive finite tolerance"
    );
    assert!(
        config.min_reduction > 0.0 && config.min_reduction <= 1.0,
        "refine: min_reduction must be in (0, 1]"
    );

    let b_norm = vecops::norm2(b);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut r_new = vec![0.0; n];
    let mut ax = vec![0.0; n];
    let mut passes = Vec::new();
    let mut level = 0usize;
    let mut outer = 0usize;
    let mut escalations = 0usize;
    let mut inner_iterations = 0usize;
    let mut inner_spmvs = 0usize;
    let mut fp64_spmvs = 0usize;

    // x₀ = 0, so the initial residual is b itself — no fp64 apply needed yet.
    let mut rel = if b_norm > 0.0 { 1.0 } else { 0.0 };
    let mut abs = b_norm;

    // A guess replaces the zero start only when its exact residual is finite and
    // strictly better; otherwise the loop below is bitwise identical to a cold
    // start (the measurement costs one fp64 SpMV either way).
    let mut warm_path = WarmPath::Cold;
    let mut initial_residual = None;
    if let Some(guess) = x0.filter(|g| g.len() == n) {
        a_fp64.apply(guess, &mut ax);
        fp64_spmvs += 1;
        vecops::sub_into(b, &ax, &mut r_new);
        let r0_norm = vecops::norm2(&r_new);
        initial_residual = Some(r0_norm);
        if r0_norm.is_finite() && r0_norm < b_norm {
            warm_path = WarmPath::Correction;
            x.copy_from_slice(guess);
            std::mem::swap(&mut r, &mut r_new);
            abs = r0_norm;
            rel = if b_norm > 0.0 { r0_norm / b_norm } else { 0.0 };
        } else {
            warm_path = WarmPath::GuardRejected;
        }
    }

    // The inner tolerance is relative to each pass's rhs (the current residual);
    // absolute inner tolerances would become unreachable as the residual shrinks.
    let mut inner_config = config.inner.clone();
    inner_config.relative = true;

    let mut stop = RefinementStop::MaxOuter;
    if rel <= config.target {
        stop = RefinementStop::Converged; // zero rhs, or an already-converged guess
        if warm_path == WarmPath::Correction {
            warm_path = WarmPath::AlreadyConverged;
        }
    } else {
        for _ in 0..config.max_outer {
            outer += 1;
            let correction = ladder.solve(level, &r, &inner_config);
            inner_iterations += correction.iterations;
            inner_spmvs += correction.spmv_count;

            // Tentatively accept: x' = x + d, then measure the *exact* residual.
            vecops::axpy(1.0, &correction.x, &mut x);
            a_fp64.apply(&x, &mut ax);
            fp64_spmvs += 1;
            vecops::sub_into(b, &ax, &mut r_new);
            let new_abs = vecops::norm2(&r_new);
            let new_rel = if b_norm > 0.0 { new_abs / b_norm } else { 0.0 };

            // A pass that grows the residual (or corrupts it) is rolled back — the
            // previous residual buffer is still intact — so the loop never ends worse
            // than its best iterate.
            let rejected = !new_rel.is_finite() || new_rel > rel;
            if rejected {
                vecops::axpy(-1.0, &correction.x, &mut x);
            } else {
                std::mem::swap(&mut r, &mut r_new);
                abs = new_abs;
            }
            let after = if rejected { rel } else { new_rel };
            let stalled = rejected || after > config.min_reduction * rel;
            let can_escalate = level + 1 < ladder.levels();
            let escalate = stalled && after > config.target && can_escalate;

            if config.record_passes {
                passes.push(RefinementPass {
                    level,
                    level_name: ladder.level_name(level),
                    inner_iterations: correction.iterations,
                    inner_spmvs: correction.spmv_count,
                    inner_stop: correction.stop,
                    residual_before: rel,
                    residual_after: after,
                    rejected,
                    escalated: escalate,
                });
            }

            rel = after;
            if rel <= config.target {
                stop = RefinementStop::Converged;
                break;
            }
            if escalate {
                level += 1;
                escalations += 1;
            } else if stalled {
                // Already at the top rung and still not contracting: give up honestly
                // rather than burning the remaining outer passes.
                stop = RefinementStop::Stalled;
                break;
            }
        }
    }

    RefinementResult {
        warm_path,
        initial_residual,
        x,
        outer_iterations: outer,
        inner_iterations,
        inner_spmvs,
        fp64_spmvs,
        escalations,
        final_level: level,
        final_relative_residual: rel,
        final_residual: abs,
        passes,
        stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::DiagonalOperator;
    use refloat_matgen::generators;
    use refloat_sparse::CsrMatrix;

    /// An operator that perturbs a CSR matrix's action by a fixed relative amount —
    /// a stand-in for a quantized operator with controllable "precision".
    struct PerturbedOperator {
        csr: CsrMatrix,
        rel_error: f64,
    }

    impl LinearOperator for PerturbedOperator {
        fn nrows(&self) -> usize {
            self.csr.nrows()
        }
        fn ncols(&self) -> usize {
            self.csr.ncols()
        }
        fn apply(&mut self, x: &[f64], y: &mut [f64]) {
            self.csr.spmv_into(x, y);
            for (i, yi) in y.iter_mut().enumerate() {
                // Deterministic sign-alternating perturbation proportional to |y|.
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                *yi *= 1.0 + sign * self.rel_error;
            }
        }
        fn name(&self) -> String {
            format!("perturbed (rel {:.1e})", self.rel_error)
        }
    }

    fn poisson(n: usize) -> CsrMatrix {
        generators::laplacian_2d(n, n, 0.4).to_csr()
    }

    #[test]
    fn refinement_reaches_fp64_accuracy_with_a_coarse_inner_operator() {
        let a = poisson(16);
        let b: Vec<f64> = (0..a.nrows()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut ladder =
            OperatorLadder::new(SolverKind::Cg).with_rung(Box::new(PerturbedOperator {
                csr: a.clone(),
                rel_error: 1e-3,
            }));
        let config = RefinementConfig::to_target(1e-12);
        let result = refine(&mut a.clone(), &b, &mut ladder, &config);
        assert!(result.converged(), "stop = {:?}", result.stop);
        assert!(result.final_relative_residual <= 1e-12);
        assert!(result.outer_iterations >= 2, "one pass cannot be enough");
        assert_eq!(result.escalations, 0);
    }

    fn perturbed_ladder(a: &CsrMatrix, rel_error: f64) -> OperatorLadder {
        OperatorLadder::new(SolverKind::Cg).with_rung(Box::new(PerturbedOperator {
            csr: a.clone(),
            rel_error,
        }))
    }

    #[test]
    fn refine_warm_without_a_guess_is_bitwise_identical_to_refine() {
        let a = poisson(14);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + ((i % 5) as f64)).collect();
        let config = RefinementConfig::to_target(1e-11);
        let cold = refine(&mut a.clone(), &b, &mut perturbed_ladder(&a, 1e-3), &config);
        let warm = refine_warm(
            &mut a.clone(),
            &b,
            None,
            &mut perturbed_ladder(&a, 1e-3),
            &config,
        );
        assert_eq!(warm.warm_path, WarmPath::Cold);
        assert_eq!(warm.initial_residual, None);
        assert_eq!(warm.fp64_spmvs, cold.fp64_spmvs);
        assert!(warm
            .x
            .iter()
            .zip(cold.x.iter())
            .all(|(w, c)| w.to_bits() == c.to_bits()));
    }

    #[test]
    fn refine_warm_skips_most_passes_with_a_close_guess() {
        let a = poisson(14);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + ((i % 5) as f64)).collect();
        let config = RefinementConfig::to_target(1e-11);
        let cold = refine(&mut a.clone(), &b, &mut perturbed_ladder(&a, 1e-3), &config);
        assert!(cold.converged());
        // A slightly perturbed converged solution: decades below ‖b‖ but not at the
        // target, like a transient chain's previous step.
        let mut guess = cold.x.clone();
        for (i, gi) in guess.iter_mut().enumerate() {
            *gi += 1e-7 * (0.4 * i as f64).sin();
        }
        let warm = refine_warm(
            &mut a.clone(),
            &b,
            Some(&guess),
            &mut perturbed_ladder(&a, 1e-3),
            &config,
        );
        assert_eq!(warm.warm_path, WarmPath::Correction);
        assert!(warm.converged());
        assert!(
            warm.outer_iterations < cold.outer_iterations,
            "warm {} vs cold {} passes",
            warm.outer_iterations,
            cold.outer_iterations
        );
        assert!(warm.inner_iterations < cold.inner_iterations);

        // The converged solution itself short-circuits: zero passes, and the claim
        // is about the *true* fp64 residual.
        let short = refine_warm(
            &mut a.clone(),
            &b,
            Some(&cold.x),
            &mut perturbed_ladder(&a, 1e-3),
            &config,
        );
        assert_eq!(short.warm_path, WarmPath::AlreadyConverged);
        assert_eq!(short.outer_iterations, 0);
        assert!(short.converged());
        assert!(short
            .x
            .iter()
            .zip(cold.x.iter())
            .all(|(s, c)| s.to_bits() == c.to_bits()));
    }

    #[test]
    fn refine_warm_rejects_a_hopeless_guess_and_falls_back_bitwise() {
        let a = poisson(12);
        let b = vec![1.0; a.nrows()];
        let config = RefinementConfig::to_target(1e-10);
        let cold = refine(&mut a.clone(), &b, &mut perturbed_ladder(&a, 1e-3), &config);
        let bad = vec![1.0e9; a.nrows()];
        let warm = refine_warm(
            &mut a.clone(),
            &b,
            Some(&bad),
            &mut perturbed_ladder(&a, 1e-3),
            &config,
        );
        assert_eq!(warm.warm_path, WarmPath::GuardRejected);
        assert!(warm.initial_residual.unwrap() >= vecops::norm2(&b));
        assert_eq!(warm.fp64_spmvs, cold.fp64_spmvs + 1);
        assert!(warm
            .x
            .iter()
            .zip(cold.x.iter())
            .all(|(w, c)| w.to_bits() == c.to_bits()));
    }

    #[test]
    fn stalling_rung_escalates_and_then_converges() {
        let a = poisson(12);
        let b = vec![1.0; a.nrows()];
        // Rung 0 is far too coarse to contract; rung 1 is fine; rung 2 is exact.
        let mut ladder = OperatorLadder::new(SolverKind::Cg)
            .with_rung(Box::new(PerturbedOperator {
                csr: a.clone(),
                rel_error: 0.9,
            }))
            .with_rung(Box::new(PerturbedOperator {
                csr: a.clone(),
                rel_error: 1e-4,
            }))
            .with_rung(Box::new(a.clone()));
        let config = RefinementConfig::to_target(1e-12).with_max_outer(60);
        let result = refine(&mut a.clone(), &b, &mut ladder, &config);
        assert!(result.converged(), "stop = {:?}", result.stop);
        assert!(result.escalations >= 1, "coarse rung should stall");
        assert!(result.final_level >= 1);
        // The pass log names the stalling rung and marks the escalation.
        assert!(result.passes.iter().any(|p| p.escalated && p.level == 0));
    }

    #[test]
    fn top_rung_stall_reports_stalled_not_maxouter() {
        let a = poisson(10);
        let b = vec![1.0; a.nrows()];
        // A single hopeless rung: the driver must give up via Stalled, quickly.
        let mut ladder =
            OperatorLadder::new(SolverKind::Cg).with_rung(Box::new(PerturbedOperator {
                csr: a.clone(),
                rel_error: 0.95,
            }));
        let config = RefinementConfig::to_target(1e-14).with_max_outer(50);
        let result = refine(&mut a.clone(), &b, &mut ladder, &config);
        assert_eq!(result.stop, RefinementStop::Stalled);
        assert!(result.outer_iterations < 50, "stall must short-circuit");
        // Rolled-back or stalled passes never leave the iterate worse than before.
        for pair in result.passes.windows(2) {
            assert!(pair[1].residual_after <= pair[0].residual_after * (1.0 + 1e-12));
        }
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = poisson(6);
        let mut ladder = OperatorLadder::new(SolverKind::Cg).with_rung(Box::new(a.clone()));
        let result = refine(
            &mut a.clone(),
            &vec![0.0; 36],
            &mut ladder,
            &RefinementConfig::default(),
        );
        assert!(result.converged());
        assert_eq!(result.outer_iterations, 0);
        assert_eq!(result.fp64_spmvs, 0);
        assert!(result.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn into_solve_result_preserves_the_outer_story() {
        let a = poisson(8);
        let b = vec![1.0; a.nrows()];
        let mut ladder =
            OperatorLadder::new(SolverKind::Cg).with_rung(Box::new(PerturbedOperator {
                csr: a.clone(),
                rel_error: 1e-2,
            }));
        let config = RefinementConfig::to_target(1e-12);
        let result = refine(&mut a.clone(), &b, &mut ladder, &config);
        assert!(result.converged());
        let outer = result.outer_iterations;
        let solve = result.into_solve_result();
        assert_eq!(solve.stop, StopReason::Converged);
        assert_eq!(solve.trace.len(), outer + 1);
        assert!(solve.iterations > 0);
        assert!(solve.final_residual <= 1e-12 * vecops::norm2(&b));
    }

    #[test]
    fn diagonal_ladder_with_bicgstab_also_refines() {
        let n = 40;
        let diag: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.25).collect();
        let coarse: Vec<f64> = diag.iter().map(|d| d * 1.001).collect();
        let mut ladder = OperatorLadder::new(SolverKind::BiCgStab)
            .with_rung(Box::new(DiagonalOperator::new(coarse)));
        let b = vec![3.0; n];
        let mut exact = DiagonalOperator::new(diag.clone());
        let result = refine(
            &mut exact,
            &b,
            &mut ladder,
            &RefinementConfig::to_target(1e-13),
        );
        assert!(result.converged(), "stop = {:?}", result.stop);
        for (xi, di) in result.x.iter().zip(diag.iter()) {
            assert!((xi - 3.0 / di).abs() < 1e-10);
        }
    }
}
