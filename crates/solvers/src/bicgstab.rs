//! Stabilized bi-conjugate gradient (BiCGSTAB) — van der Vorst, the second Krylov solver
//! evaluated in the paper.
//!
//! BiCGSTAB performs two operator applications per iteration, which is why the paper's
//! Fig. 8 treats one BiCGSTAB iteration as two SpMVs when converting iteration counts
//! into accelerator time.

use crate::operator::LinearOperator;
use crate::result::{SolveResult, SolverConfig, StopReason};
use refloat_sparse::vecops;

/// Residual growth beyond this factor over the best iterate triggers a restart: the
/// recurrence has left the region where its recursive residual tracks the true one.
const DIVERGENCE_FACTOR: f64 = 1e4;

/// Solves `A x = b` with BiCGSTAB starting from `x₀ = 0`.
///
/// Unlike CG, BiCGSTAB does not require symmetry, so it also covers the non-symmetric
/// convection–diffusion example workloads.
///
/// The recurrence is guarded against its two classic failure modes: when the shadow
/// residual loses bi-orthogonality (`ρ = r̂ᵀr` collapses toward zero) or the recursive
/// residual diverges from the best iterate, the solve *restarts* from the best iterate
/// with a fresh shadow (`r̂ ← r`, a recomputed true residual) instead of silently
/// blowing up; a restart that makes no progress ends the solve at the best iterate.
pub fn bicgstab<A: LinearOperator + ?Sized>(
    a: &mut A,
    b: &[f64],
    config: &SolverConfig,
) -> SolveResult {
    let n = b.len();
    assert_eq!(
        a.nrows(),
        n,
        "bicgstab: operator rows must match rhs length"
    );
    assert_eq!(a.ncols(), n, "bicgstab: operator must be square");

    let threshold = config.threshold(vecops::norm2(b));
    let mut trace = Vec::new();

    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r0 = b - A·0 = b
    let mut r_hat = r.clone(); // shadow residual, fixed between restarts
    let mut p = vec![0.0; n];
    let mut v = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];

    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut spmv_count = 0usize;

    let mut res_norm = vecops::norm2(&r);
    // The best iterate seen so far by the *recursive* residual — what restarts resume
    // from, so divergence can never lose an already-good trajectory point.
    let mut best_x = x.clone();
    let mut best_norm = res_norm;
    // The last iterate whose residual was *measured* (`‖b − A·x‖`, recomputed at each
    // restart): what a stalled solve returns.  Recursive norms can drift from the
    // truth (e.g. on quantized operators, whose apply is weakly input-dependent), so
    // only measured residuals are trusted for progress decisions and final answers.
    let mut anchor_x = x.clone();
    let mut anchor_norm = res_norm;
    if config.record_trace {
        trace.push(res_norm);
    }
    if res_norm < threshold {
        return SolveResult {
            x,
            iterations: 0,
            spmv_count,
            final_residual: res_norm,
            trace,
            stop: StopReason::Converged,
        };
    }

    let breakdown = |what: String,
                     x: Vec<f64>,
                     iterations: usize,
                     spmv_count: usize,
                     final_residual: f64,
                     trace: Vec<f64>| SolveResult {
        x,
        iterations,
        spmv_count,
        final_residual,
        trace,
        stop: StopReason::Breakdown(what),
    };

    let mut r_hat_norm = res_norm;
    let mut restart = false;
    for k in 1..=config.max_iterations {
        if restart {
            restart = false;
            // Resume from the best trajectory point with its *measured* residual and
            // a fresh shadow; the Krylov recurrence starts over.
            x.copy_from_slice(&best_x);
            a.apply(&x, &mut t);
            spmv_count += 1;
            for i in 0..n {
                r[i] = b[i] - t[i];
            }
            res_norm = vecops::norm2(&r);
            if config.record_trace {
                trace.push(res_norm);
            }
            if res_norm < threshold {
                return SolveResult {
                    x,
                    iterations: k,
                    spmv_count,
                    final_residual: res_norm,
                    trace,
                    stop: StopReason::Converged,
                };
            }
            // A restart that cannot beat the previously *measured* residual would
            // replay a known-bad trajectory: stop at the measured-best iterate.
            // (NaN residuals land here too: `res_norm < anchor_norm` is then false.)
            if !matches!(
                res_norm.partial_cmp(&anchor_norm),
                Some(std::cmp::Ordering::Less)
            ) {
                return breakdown(
                    format!("restart made no progress (residual stalled at {anchor_norm:.3e})"),
                    anchor_x,
                    k,
                    spmv_count,
                    anchor_norm,
                    trace,
                );
            }
            anchor_norm = res_norm;
            anchor_x.copy_from_slice(&x);
            best_norm = res_norm;
            best_x.copy_from_slice(&x);
            r_hat.copy_from_slice(&r);
            r_hat_norm = res_norm;
            rho = 1.0;
            alpha = 1.0;
            omega = 1.0;
            vecops::zero(&mut p);
            vecops::zero(&mut v);
        }

        let rho_new = vecops::dot(&r_hat, &r);
        if !rho_new.is_finite() {
            return breakdown(
                format!("rho = {rho_new}"),
                x,
                k,
                spmv_count,
                res_norm,
                trace,
            );
        }
        // The shadow residual has (numerically) lost bi-orthogonality: the recurrence
        // scalars are about to be dominated by rounding noise.  Restart.
        if rho_new.abs() < f64::EPSILON * r_hat_norm * res_norm {
            restart = true;
            continue;
        }
        let beta = (rho_new / rho) * (alpha / omega);
        if !beta.is_finite() {
            return breakdown(format!("beta = {beta}"), x, k, spmv_count, res_norm, trace);
        }
        // p = r + beta (p - omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        a.apply(&p, &mut v);
        spmv_count += 1;

        let r_hat_v = vecops::dot(&r_hat, &v);
        if r_hat_v == 0.0 || !r_hat_v.is_finite() {
            return breakdown(
                format!("r̂ᵀv = {r_hat_v}"),
                x,
                k,
                spmv_count,
                res_norm,
                trace,
            );
        }
        alpha = rho_new / r_hat_v;
        // s = r - alpha v
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        let s_norm = vecops::norm2(&s);
        if s_norm < threshold {
            vecops::axpy(alpha, &p, &mut x);
            res_norm = s_norm;
            if config.record_trace {
                trace.push(res_norm);
            }
            return SolveResult {
                x,
                iterations: k,
                spmv_count,
                final_residual: res_norm,
                trace,
                stop: StopReason::Converged,
            };
        }
        a.apply(&s, &mut t);
        spmv_count += 1;

        let t_t = vecops::dot(&t, &t);
        if !t_t.is_finite() {
            return breakdown(format!("tᵀt = {t_t}"), x, k, spmv_count, res_norm, trace);
        }
        omega = if t_t == 0.0 {
            0.0
        } else {
            vecops::dot(&t, &s) / t_t
        };
        if !omega.is_finite() {
            return breakdown(
                format!("omega = {omega}"),
                x,
                k,
                spmv_count,
                res_norm,
                trace,
            );
        }
        if omega == 0.0 {
            // A stagnated stabilizer step; the next beta would divide by it.
            restart = true;
            continue;
        }
        // x = x + alpha p + omega s
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
        }
        // r = s - omega t
        for i in 0..n {
            r[i] = s[i] - omega * t[i];
        }
        rho = rho_new;

        res_norm = vecops::norm2(&r);
        if config.record_trace {
            trace.push(res_norm);
        }
        if !res_norm.is_finite() || res_norm > DIVERGENCE_FACTOR * best_norm {
            // The recursive residual no longer tracks reality — resume from the best
            // iterate rather than riding the blow-up (or returning garbage).
            restart = true;
            continue;
        }
        if res_norm < threshold {
            return SolveResult {
                x,
                iterations: k,
                spmv_count,
                final_residual: res_norm,
                trace,
                stop: StopReason::Converged,
            };
        }
        if res_norm < best_norm {
            best_norm = res_norm;
            best_x.copy_from_slice(&x);
        }
    }

    // Out of iterations: report the best iterate seen, not whatever state the
    // recurrence happened to end in (a NaN final residual counts as worse-than-best).
    if best_norm < res_norm || res_norm.is_nan() {
        x = best_x;
        res_norm = best_norm;
    }
    SolveResult {
        x,
        iterations: config.max_iterations,
        spmv_count,
        final_residual: res_norm,
        trace,
        stop: StopReason::MaxIterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refloat_matgen::generators;
    use refloat_sparse::CsrMatrix;

    fn solve(a: &CsrMatrix, b: &[f64], cfg: &SolverConfig) -> SolveResult {
        let mut op = a.clone();
        bicgstab(&mut op, b, cfg)
    }

    #[test]
    fn solves_spd_laplacian() {
        let a = generators::laplacian_2d(16, 16, 0.2).to_csr();
        let x_star: Vec<f64> = (0..a.nrows())
            .map(|i| ((i * 7 % 13) as f64) / 13.0)
            .collect();
        let b = a.spmv(&x_star);
        let r = solve(&a, &b, &SolverConfig::relative(1e-10));
        assert!(r.converged(), "stop = {:?}", r.stop);
        assert!(vecops::rel_err(&r.x, &x_star) < 1e-6);
    }

    #[test]
    fn solves_nonsymmetric_convection_diffusion() {
        let a = generators::convection_diffusion_2d(20, 20, 15.0).to_csr();
        assert!(!a.is_symmetric(1e-12));
        let x_star: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.01).cos()).collect();
        let b = a.spmv(&x_star);
        let r = solve(
            &a,
            &b,
            &SolverConfig::relative(1e-10).with_max_iterations(2000),
        );
        assert!(r.converged(), "stop = {:?}", r.stop);
        assert!(vecops::rel_err(&r.x, &x_star) < 1e-6);
    }

    #[test]
    fn uses_two_spmv_per_full_iteration() {
        let a = generators::laplacian_2d(12, 12, 0.4).to_csr();
        let b = vec![1.0; 144];
        let r = solve(&a, &b, &SolverConfig::relative(1e-9));
        assert!(r.converged());
        // Early exit on the s-norm check can save the final SpMV, hence the ≤.
        assert!(r.spmv_count <= 2 * r.iterations);
        assert!(r.spmv_count >= 2 * r.iterations - 1);
    }

    #[test]
    fn typically_needs_fewer_iterations_than_cg_on_spd_systems() {
        // The paper's Table VI shows BiCGSTAB iteration counts below CG's on all 12
        // matrices (each BiCGSTAB iteration does twice the work).
        let a = generators::laplacian_2d(24, 24, 0.05).to_csr();
        let b = vec![1.0; a.nrows()];
        let cfg = SolverConfig::relative(1e-9);
        let r_bi = solve(&a, &b, &cfg);
        let mut op = a.clone();
        let r_cg = crate::cg::cg(&mut op, &b, &cfg);
        assert!(r_bi.converged() && r_cg.converged());
        assert!(r_bi.iterations <= r_cg.iterations);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = generators::laplacian_2d(5, 5, 0.1).to_csr();
        let r = solve(&a, &[0.0; 25], &SolverConfig::default());
        assert!(r.converged());
        assert_eq!(r.iterations, 0);
        assert_eq!(r.spmv_count, 0);
    }

    #[test]
    fn reports_nc_when_iteration_budget_is_too_small() {
        let a = generators::logspace_diagonal(300, 1.0, 1e9).to_csr();
        let b = vec![1.0; 300];
        let r = solve(
            &a,
            &b,
            &SolverConfig::relative(1e-12).with_max_iterations(2),
        );
        assert!(!r.converged());
        assert_eq!(r.stop, StopReason::MaxIterations);
    }

    #[test]
    fn trace_records_initial_plus_per_iteration_residuals() {
        let a = generators::laplacian_2d(10, 10, 0.5).to_csr();
        let b = vec![1.0; 100];
        let r = solve(&a, &b, &SolverConfig::relative(1e-9));
        assert!(r.converged());
        assert_eq!(r.trace.len(), r.iterations + 1);
    }
}
