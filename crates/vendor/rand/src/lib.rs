//! Offline shim for the subset of the [`rand`](https://crates.io/crates/rand) 0.8 API
//! used by this workspace: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits and the
//! [`distributions::Uniform`] sampler.
//!
//! The build container has no crates.io access, so this crate stands in for the real
//! one.  It is **not** a cryptographic or statistically-audited generator — it only
//! guarantees the properties the reproduction needs: determinism under a fixed seed,
//! a uniform-enough `[0, 1)` double, and uniform integer ranges.

#![allow(clippy::all)]

pub mod distributions;

pub use distributions::{Distribution, Standard};

/// The low-level generator interface: a source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32` (high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution (`f64` in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive (`a..=b`) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it into a full seed with
    /// SplitMix64 (the same scheme the real `rand` crate uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn unit_doubles_stay_in_range() {
        let mut rng = SplitMix(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SplitMix(11);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
            let s: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }
}
