//! Distributions: the `Standard` unit distribution, `Uniform`, and range sampling.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: `f64`/`f32` uniform in `[0, 1)`, integers over
/// their full range, `bool` fair.
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be sampled uniformly from a bounded range.
pub trait SampleUniform: Sized {
    /// A sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// A sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128) - (lo as i128);
                let v = (rng.next_u64() as i128).rem_euclid(span);
                (lo as i128 + v) as $ty
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let v = (rng.next_u64() as i128).rem_euclid(span);
                (lo as i128 + v) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (unit as $ty) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                // 2^53 evenly spaced points covering both endpoints: dividing the
                // 53-bit draw by 2^53 - 1 maps the maximum draw to exactly 1.0.
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (unit as $ty) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// A reusable uniform sampler over `[lo, hi)`, mirroring `rand::distributions::Uniform`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: SampleUniform + Copy> Uniform<T> {
    /// A sampler for the half-open range `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        Uniform { lo, hi }
    }

    /// A sampler for the closed range `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> UniformInclusive<T> {
        UniformInclusive { lo, hi }
    }
}

impl<T: SampleUniform + Copy> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_half_open(self.lo, self.hi, rng)
    }
}

/// The closed-range counterpart of [`Uniform`].
#[derive(Debug, Clone, Copy)]
pub struct UniformInclusive<T> {
    lo: T,
    hi: T,
}

impl<T: SampleUniform + Copy> Distribution<T> for UniformInclusive<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_inclusive(self.lo, self.hi, rng)
    }
}
