//! Offline shim for the subset of the `criterion` API this workspace's benches use:
//! groups, throughput annotations, `bench_function`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: per sample, the closure is run in a timed batch
//! sized to ~1 ms, and the median/min/max across samples is reported on stdout.  No
//! statistics beyond that, no HTML reports — just honest wall-clock numbers suitable
//! for spotting order-of-magnitude regressions offline.

#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let sample_size = self.sample_size;
        run_benchmark(&id.into_benchmark_id(), sample_size, None, f);
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark id with an optional parameter, e.g. `spmv/csr_serial/471601`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Things accepted as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

/// Passed to the benchmark closure; `iter` runs and times the workload.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `batch` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: run single iterations until ~10 ms total to pick a batch size of
    // roughly 1 ms per sample.
    let mut bencher = Bencher {
        batch: 1,
        elapsed: Duration::ZERO,
    };
    let calibration = Instant::now();
    let mut calls = 0u64;
    while calibration.elapsed() < Duration::from_millis(10) {
        f(&mut bencher);
        calls += 1;
        if calls >= 1000 {
            break;
        }
    }
    let per_call = calibration.elapsed().as_secs_f64() / calls as f64;
    let batch = ((1.0e-3 / per_call.max(1e-12)) as u64).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            batch,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.3e} elem/s", n as f64 / median),
        Some(Throughput::Bytes(n)) => format!("  {:>12.3e} B/s", n as f64 / median),
        None => String::new(),
    };
    println!(
        "bench {id:<50} median {:>12}  min {:>12}  max {:>12}{rate}",
        format_time(median),
        format_time(min),
        format_time(max),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a group of benchmark targets, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
