//! Offline shim for the subset of [`proptest`](https://crates.io/crates/proptest) this
//! workspace uses: range/tuple/vec strategies, `prop_map` / `prop_flat_map` /
//! `prop_filter`, `prop_oneof!`, `Just`, and the `proptest!` macro.
//!
//! Differences from the real crate, by design:
//! * cases are generated from a deterministic per-test seed (derived from the test
//!   name), so failures are reproducible by rerunning the test — there is no
//!   persistence file;
//! * there is **no shrinking** — a failing case reports the assertion as-is;
//! * `prop_assert!` / `prop_assert_eq!` panic immediately (they are plain asserts).

#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic generator driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }
}

/// Builds the deterministic generator for one test case (used by `proptest!`).
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing the predicate (resamples; panics if the predicate
    /// rejects 1000 draws in a row).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}): predicate rejected 1000 consecutive samples",
            self.whence
        )
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between boxed strategies of one value type (see `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds the union; panics on an empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let v = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + v) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let v = (rng.next_u64() as i128).rem_euclid(span);
                (*self.start() as i128 + v) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// A fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// The strategy generating both booleans.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests: each `#[test] fn name(pattern in strategy, ...) { body }`
/// becomes a normal test running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        #[test]
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::test_rng(stringify!($name), case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut proptest_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Property assertion (immediate panic in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (immediate panic in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion (immediate panic in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(::std::boxed::Box::new($option) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_sample_in_bounds() {
        let mut rng = crate::test_rng("sampling", 0);
        for _ in 0..500 {
            let v = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let (a, b) = Strategy::sample(&(0usize..4, -1i32..=2), &mut rng);
            assert!(a < 4 && (-1..=2).contains(&b));
            let xs = Strategy::sample(&crate::collection::vec(0u64..10, 1..8), &mut rng);
            assert!(!xs.is_empty() && xs.len() < 8);
            assert!(xs.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = crate::test_rng("oneof", 1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::sample(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works((n, xs) in (1usize..10).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0usize..n, 1..20))
        })) {
            prop_assert!(xs.iter().all(|&x| x < n));
        }
    }
}
