//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Acceptable vector-length specifications: a fixed length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// A strategy generating vectors of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span > 1 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
