//! Offline shim for the subset of `serde_json` this workspace uses: `to_string`,
//! `to_string_pretty` and `from_str` over the serde shim's [`serde::Value`] model.

#![allow(clippy::all)]

use serde::{Deserialize, Serialize, Value};

/// JSON error (rendering never fails; parsing reports position-free messages).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialises to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialises to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any shim-deserialisable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON document"));
    }
    Ok(T::from_value(&value)?)
}

// --- Rendering ------------------------------------------------------------------------

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => render_number(*n, out),
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => render_seq(
            items.iter(),
            out,
            indent,
            depth,
            '[',
            ']',
            |item, out, d| render(item, out, indent, d),
        ),
        Value::Object(fields) => render_seq(
            fields.iter(),
            out,
            indent,
            depth,
            '{',
            '}',
            |(k, val), out, d| {
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, d);
            },
        ),
    }
}

fn render_seq<I, F>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut each: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, usize),
{
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        each(item, out, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn render_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // Rust's Display for f64 prints the shortest string that round-trips exactly.
        out.push_str(&format!("{n}"));
    } else {
        // serde_json's convention for non-finite numbers.
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Parsing --------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new("expected ',' or '}' in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("non-ASCII \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode scalar"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("crystm03".into())),
            ("id".into(), Value::Num(355.0)),
            ("ratio".into(), Value::Num(0.1234567890123)),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [1.0e-300, 3.1e-4, 0.1 + 0.2, f64::MAX, -5.088e1] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash \t unicode \u{1F600}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
