//! Offline shim for `rand_chacha`: a genuine ChaCha8 block cipher used as a
//! deterministic pseudo-random generator.
//!
//! This is the original (djb) ChaCha variant with a 64-bit block counter and a zero
//! nonce; it is seeded through [`rand::SeedableRng`] (32-byte key).  The stream is
//! **not** bit-compatible with the real `rand_chacha` crate — only determinism under a
//! fixed seed matters to this workspace — but the core permutation is the real one.

#![allow(clippy::all)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14], state[15]: zero nonce.
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let sa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn clone_continues_the_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_doubles_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
