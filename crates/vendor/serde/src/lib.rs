//! Offline shim for the subset of `serde` this workspace uses: `Serialize` /
//! `Deserialize` traits (with derive macros from the sibling `serde_derive` shim) over
//! a small JSON-like [`Value`] model, consumed by the `serde_json` shim.
//!
//! The real serde is a zero-copy visitor framework; this shim trades all of that for a
//! tiny tree-based model, which is plenty for the flat result records the bench
//! binaries serialise.

#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree.  Field order of objects is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; exact for integers up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered field list.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Looks a field up in an object; absent fields read as `null` (so `Option` fields
    /// deserialise to `None`).
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => Ok(fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(Error::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// A short name for the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] model.
pub trait Serialize {
    /// Serialises `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- Serialize impls ------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_num {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $ty),
                    other => Err(Error::new(format!(
                        "expected number for {}, found {}", stringify!($ty), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_ser_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

// --- Deserialize impls ----------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
