//! Offline shim for `serde_derive`: `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for plain structs with named fields (the only shape this workspace derives).
//!
//! Implemented without `syn`/`quote` — the input is walked as raw token trees to
//! extract the struct name and field names, and the impl is emitted as a string.

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extracts `(struct_name, [field names])` from the derive input.
///
/// Panics (compile error) on enums, tuple structs, and generic structs — the shim only
/// supports the named-field structs the workspace actually derives on.
fn parse_named_struct(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes (`#[...]` shows up as Punct('#') + bracket Group).
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde shim derive: expected struct name, got {other:?}"),
                }
                break;
            }
            // `pub`, `pub(crate)` etc. — ignore.
            _ => {}
        }
    }
    let name = name.expect("serde shim derive: input is not a struct");

    // Find the brace group holding the fields; anything before it that is a `<` means
    // generics, which the shim does not support.
    let mut fields_group = None;
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde shim derive: generic structs are not supported")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                fields_group = Some(g);
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple structs are not supported")
            }
            _ => {}
        }
    }
    let group = fields_group.expect("serde shim derive: struct has no named-field body");

    // Walk the field list: a field name is the ident immediately before a `:` at
    // angle-bracket depth 0 while we are *expecting* a field (i.e. not inside a type).
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut in_type = false;
    let mut last_ident = None;
    for tt in group.stream() {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if angle_depth == 0 && !in_type => {
                    if let Some(id) = last_ident.take() {
                        fields.push(id);
                        in_type = true;
                    }
                }
                ',' if angle_depth == 0 => {
                    in_type = false;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) if !in_type => last_ident = Some(id.to_string()),
            _ => {}
        }
    }
    (name, fields)
}

/// Derives the shim `serde::Serialize` (a `to_value` producing an ordered object).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input);
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!("fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated Serialize impl must parse")
}

/// Derives the shim `serde::Deserialize` (field-by-field `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input);
    let inits: String = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?,\n"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated Deserialize impl must parse")
}
