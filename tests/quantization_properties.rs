//! Workspace-level property tests: invariants of the ReFloat conversion and of the
//! solvers that must hold for *any* well-scaled SPD input, not just the paper workloads.

use proptest::prelude::*;
use refloat::core::format::max_offset_for_bits;
use refloat::core::scalar::{fraction_truncation_error_bound, pow2, requantize};
use refloat::prelude::*;
use refloat::sparse::vecops;

fn modes(selector: usize) -> (RoundingMode, UnderflowMode) {
    let rounding = if selector.is_multiple_of(2) {
        RoundingMode::Truncate
    } else {
        RoundingMode::RoundNearest
    };
    let underflow = if (selector / 2).is_multiple_of(2) {
        UnderflowMode::Saturate
    } else {
        UnderflowMode::FlushToZero
    };
    (rounding, underflow)
}

/// Builds a random SPD matrix: a banded diagonally-dominant matrix with the given
/// off-diagonal density and value scale.
fn random_spd(n: usize, scale: f64, seed: u64) -> CsrMatrix {
    refloat::matgen::generators::random_spd_graph(n, 4, 1.5, scale, seed).to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn refloat_cg_converges_on_random_spd_systems(
        seed in 0u64..1000,
        scale_exp in -40i32..20,
    ) {
        // Any diagonally dominant SPD system, at any value scale (the per-block exponent
        // base absorbs the scale), must converge under the paper's default bits.
        let scale = 2.0f64.powi(scale_exp);
        let a = random_spd(300, scale, seed);
        let b = vec![1.0; a.nrows()];
        let cfg = SolverConfig::relative(1e-8).with_max_iterations(2_000).with_trace(false);
        let mut op = ReFloatMatrix::from_csr(&a, ReFloatConfig::new(5, 3, 3, 3, 8));
        let result = cg(&mut op, &b, &cfg);
        prop_assert!(result.converged(), "stop = {:?}", result.stop);
    }

    #[test]
    fn quantized_matrix_error_is_scale_invariant(
        seed in 0u64..1000,
        scale_exp in -100i32..100,
    ) {
        // Scaling a matrix by a power of two must not change the *relative* quantization
        // error at all (the exponent base shifts, fractions are untouched).
        let a = random_spd(200, 1.0, seed);
        let format = ReFloatConfig::new(5, 3, 3, 3, 8);
        let q_base = ReFloatMatrix::from_csr(&a, format).to_quantized_csr();

        let mut scaled = a.clone();
        let factor = 2.0f64.powi(scale_exp);
        for v in scaled.values_mut() {
            *v *= factor;
        }
        let q_scaled = ReFloatMatrix::from_csr(&scaled, format).to_quantized_csr();

        for ((r, c, v), (_, _, w)) in q_base.iter().zip(q_scaled.iter()) {
            let expected = v * factor;
            prop_assert!(
                (w - expected).abs() <= 1e-12 * expected.abs(),
                "({r},{c}): scaled quantization {w} vs expected {expected}"
            );
        }
    }

    #[test]
    fn quantized_spmv_error_is_relative_to_input_magnitude(
        seed in 0u64..1000,
        magnitude_exp in -20i32..20,
    ) {
        // The SpMV error of the quantized operator must scale down with the input vector
        // — the property that lets the iterative solvers keep making progress as the
        // residual shrinks (§III.D's error argument).
        let a = random_spd(256, 1.0, seed);
        let format = ReFloatConfig::new(5, 3, 8, 3, 8);
        let mut op = ReFloatMatrix::from_csr(&a, format);
        let magnitude = 2.0f64.powi(magnitude_exp);
        let x: Vec<f64> = (0..a.ncols())
            .map(|i| magnitude * (((i * 37 + seed as usize) % 19) as f64 / 19.0 + 0.05))
            .collect();
        let exact = a.spmv(&x);
        let mut approx = vec![0.0; a.nrows()];
        op.apply(&x, &mut approx);
        let err = vecops::rel_err(&approx, &exact);
        prop_assert!(err < 0.05, "relative SpMV error {err} too large at scale 2^{magnitude_exp}");
    }

    #[test]
    fn requantize_is_monotone_in_magnitude_within_the_exponent_window(
        frac_a in 1.0f64..2.0,
        frac_b in 1.0f64..2.0,
        exp_a in -3i32..4,
        exp_b in -3i32..4,
        f_bits in 0u32..12,
        mode_sel in 0usize..4,
    ) {
        // With eb = 0 and e = 3 the representable exponent window is [-3, 3]; inside
        // it, requantize must preserve magnitude ordering under every rounding and
        // underflow mode.  (The saturation-carry fix is what makes this hold at the
        // top of the window: pre-fix, a fraction that rounded to 2.0 at the max offset
        // was halved below its just-smaller neighbours.)
        let (rounding, underflow) = modes(mode_sel);
        let u = frac_a * pow2(exp_a);
        let v = frac_b * pow2(exp_b);
        let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
        let q_lo = requantize(lo, 0, 3, f_bits, rounding, underflow);
        let q_hi = requantize(hi, 0, 3, f_bits, rounding, underflow);
        prop_assert!(
            q_lo <= q_hi,
            "monotonicity violated: {lo} -> {q_lo} but {hi} -> {q_hi} \
             (f = {f_bits}, {rounding:?}, {underflow:?})"
        );
    }

    #[test]
    fn requantize_error_stays_within_the_fraction_and_saturation_bounds(
        frac in 1.0f64..2.0,
        exp in -12i32..13,
        f_bits in 0u32..11,
        e_bits in 0u32..5,
        mode_sel in 0usize..4,
    ) {
        let (rounding, underflow) = modes(mode_sel);
        let v = frac * pow2(exp);
        let q = requantize(v, 0, e_bits, f_bits, rounding, underflow);
        let max_off = max_offset_for_bits(e_bits);
        let f_err = fraction_truncation_error_bound(f_bits);
        let max_representable = (2.0 - f_err) * pow2(max_off);
        let eps = 1e-12;

        // Nothing ever exceeds the largest representable magnitude (this is the
        // saturation-carry fix: a carry at the saturated offset clamps there).
        prop_assert!(q <= max_representable * (1.0 + eps), "q = {q} above the format maximum");
        prop_assert!(q >= 0.0);

        if exp > max_off {
            // Saturated from above: the result keeps its own quantized fraction at
            // the max offset — never more than the input, never below 2^max_off.
            prop_assert!(q <= v);
            prop_assert!(q >= pow2(max_off) * (1.0 - eps));
        } else if exp >= -max_off {
            // In the window the only loss is fraction quantization: 2^(−f) relative.
            let rel = ((q - v) / v).abs();
            prop_assert!(
                rel <= f_err + eps,
                "in-window relative error {rel} above 2^-{f_bits}"
            );
            // And quantization never grows the magnitude beyond the rounding bound.
            prop_assert!(q <= v * (1.0 + f_err + eps));
        } else {
            // Below the window: flushed to exactly zero, or saturated to the smallest
            // representable offset (a magnitude *increase*, bounded by the format).
            match underflow {
                UnderflowMode::FlushToZero => prop_assert_eq!(q, 0.0),
                UnderflowMode::Saturate => {
                    prop_assert!(q >= v * (1.0 - f_err - eps));
                    prop_assert!(q <= (2.0 - f_err) * pow2(-max_off) * (1.0 + eps));
                }
            }
        }
    }

    #[test]
    fn cg_and_bicgstab_solve_the_same_random_system(
        seed in 0u64..500,
    ) {
        let a = random_spd(200, 1.0, seed);
        let x_star: Vec<f64> = (0..a.nrows()).map(|i| ((i % 11) as f64) / 11.0 + 0.1).collect();
        let b = a.spmv(&x_star);
        let cfg = SolverConfig::relative(1e-10).with_trace(false);
        let r_cg = cg(&mut a.clone(), &b, &cfg);
        let r_bi = bicgstab(&mut a.clone(), &b, &cfg);
        prop_assert!(r_cg.converged() && r_bi.converged());
        prop_assert!(vecops::rel_err(&r_cg.x, &x_star) < 1e-6);
        prop_assert!(vecops::rel_err(&r_bi.x, &x_star) < 1e-6);
    }
}
