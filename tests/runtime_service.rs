//! Workspace-level tests of the `refloat-runtime` solve service: concurrent execution
//! must be bit-identical to serial execution, the encoded-matrix cache must actually
//! skip re-encoding, reports must reflect the batch, and the service-mode API
//! (`SolveClient` tickets, QoS scheduling, cancellation, drain/shutdown) must honour
//! its contract.

use std::sync::Arc;
use std::time::Duration;

use refloat::prelude::*;
use refloat::runtime::{
    AutoFormatSpec, CacheOutcomeKind, PlanViolation, RefinementSpec, SubmitError,
};

/// A mixed-workload, mixed-format catalog of small matrices.
fn catalog() -> Vec<(MatrixHandle, ReFloatConfig, SolverKind)> {
    let gen = &refloat::matgen::generators::laplacian_2d;
    vec![
        (
            MatrixHandle::new("poisson-16", gen(16, 16, 0.3).to_csr()),
            ReFloatConfig::new(4, 3, 8, 3, 8),
            SolverKind::Cg,
        ),
        (
            MatrixHandle::new(
                "mass-6",
                refloat::matgen::generators::mass_matrix_3d(6, 6, 6, 1e-12, 0.5, 7).to_csr(),
            ),
            ReFloatConfig::new(4, 3, 8, 3, 8),
            SolverKind::Cg,
        ),
        (
            MatrixHandle::new("poisson-12", gen(12, 12, 0.4).to_csr()),
            ReFloatConfig::new(5, 3, 3, 3, 8),
            SolverKind::Cg,
        ),
        (
            MatrixHandle::new(
                "convdiff-10",
                refloat::matgen::generators::convection_diffusion_2d(10, 10, 6.0).to_csr(),
            ),
            ReFloatConfig::new(4, 3, 8, 3, 8),
            SolverKind::BiCgStab,
        ),
    ]
}

fn trace_plans(count: usize) -> Vec<SolvePlan> {
    let catalog = catalog();
    (0..count)
        .map(|i| {
            // Deterministic skew: two thirds of the traffic goes to the first matrix.
            let which = if i % 3 != 2 {
                0
            } else {
                1 + (i / 3) % (catalog.len() - 1)
            };
            let (handle, format, solver) = &catalog[which];
            SolvePlan::new(format!("tenant-{}", i % 7), handle.clone(), *format)
                .solver(*solver)
                .solver_config(
                    SolverConfig::relative(1e-8)
                        .with_max_iterations(2_000)
                        .with_trace(false),
                )
                .build()
                .expect("valid trace plan")
        })
        .collect()
}

/// Serial reference execution of a plan: exactly what a downstream user would run by
/// hand with the umbrella crate.
fn solve_serial(plan: &SolvePlan) -> SolveResult {
    let mut op = ReFloatMatrix::from_csr(plan.matrix().csr(), plan.format());
    let ones = vec![1.0; plan.matrix().csr().nrows()];
    let rhs: &[f64] = match plan.rhs() {
        Some(b) => b,
        None => &ones,
    };
    match plan.solver() {
        SolverKind::Cg => cg(&mut op, rhs, plan.solver_config()),
        SolverKind::BiCgStab => bicgstab(&mut op, rhs, plan.solver_config()),
    }
}

#[test]
fn concurrent_results_are_bit_identical_to_serial_execution() {
    let plans = trace_plans(72); // >= 64 jobs, mixed matrices/formats/solvers
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 6, // >= 4 workers
        queue_capacity: 8,
        cache_capacity: 8,
        ..RuntimeConfig::default()
    });
    let outcome = runtime.run_batch(plans.clone());
    assert_eq!(outcome.jobs.len(), 72);

    for (plan, out) in plans.iter().zip(outcome.jobs.iter()) {
        let serial = solve_serial(plan);
        assert_eq!(
            serial.iterations, out.result.iterations,
            "job {}",
            out.job_id
        );
        assert_eq!(serial.stop, out.result.stop, "job {}", out.job_id);
        // Bit-identical solution vectors: same operator, same order of operations.
        assert_eq!(serial.x.len(), out.result.x.len());
        for (a, b) in serial.x.iter().zip(out.result.x.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "job {}", out.job_id);
        }
    }

    // Every worker should have participated in a 72-job batch.
    assert_eq!(outcome.report.per_worker_jobs.iter().sum::<u64>(), 72);
    assert_eq!(outcome.report.per_worker_jobs.len(), 6);
}

#[test]
fn two_runs_of_the_same_batch_agree_bitwise() {
    let runtime_a = SolveRuntime::new(RuntimeConfig {
        workers: 4,
        ..Default::default()
    });
    let runtime_b = SolveRuntime::new(RuntimeConfig {
        workers: 7,
        ..Default::default()
    });
    let a = runtime_a.run_batch(trace_plans(30));
    let b = runtime_b.run_batch(trace_plans(30));
    for (ja, jb) in a.jobs.iter().zip(b.jobs.iter()) {
        assert_eq!(ja.result.iterations, jb.result.iterations);
        let bits_a: Vec<u64> = ja.result.x.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = jb.result.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b);
    }

    // Turning tracing on must not perturb the numerics: a third run with a live
    // TraceSink agrees bitwise with the untraced runs, and actually traced.
    let sink = Arc::new(refloat::runtime::TraceSink::wall());
    let traced = SolveRuntime::new(RuntimeConfig {
        workers: 4,
        trace: Some(sink.clone()),
        ..Default::default()
    })
    .run_batch(trace_plans(30));
    assert!(!sink.is_empty(), "tracing was enabled but recorded nothing");
    for (ja, jt) in a.jobs.iter().zip(traced.jobs.iter()) {
        assert_eq!(ja.result.iterations, jt.result.iterations);
        let bits_a: Vec<u64> = ja.result.x.iter().map(|v| v.to_bits()).collect();
        let bits_t: Vec<u64> = jt.result.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_t, "tracing changed job {} numerics", ja.job_id);
    }
}

#[test]
fn scheduling_policy_never_changes_numerics() {
    // The QoS scheduler reorders *when* jobs run, never *what* they compute: a
    // FIFO run and a priority run of the same trace agree bitwise, job by job.
    let fifo = SolveRuntime::new(RuntimeConfig {
        workers: 3,
        scheduler: SchedulerPolicy::fifo(),
        ..Default::default()
    })
    .run_batch(trace_plans(24));
    let prio = SolveRuntime::new(RuntimeConfig {
        workers: 3,
        scheduler: SchedulerPolicy::priority(4),
        ..Default::default()
    })
    .run_batch(trace_plans(24));
    for (ja, jb) in fifo.jobs.iter().zip(prio.jobs.iter()) {
        assert_eq!(ja.job_id, jb.job_id);
        let bits_a: Vec<u64> = ja.result.x.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = jb.result.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "job {}", ja.job_id);
    }
}

#[test]
fn resubmitting_a_matrix_hits_the_cache_and_skips_encoding() {
    let (handle, format, _) = catalog().remove(0);
    let plan = |tenant: &str, format: ReFloatConfig| {
        SolvePlan::new(tenant, handle.clone(), format)
            .build()
            .unwrap()
    };
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        ..Default::default()
    });

    let first = runtime.run_batch(vec![plan("t0", format)]);
    assert_eq!(first.jobs[0].telemetry.cache, CacheOutcomeKind::Miss);
    assert!(
        first.jobs[0].telemetry.encode_s > 0.0,
        "the miss pays the encode"
    );

    // Second submission of the same matrix + format: a hit, zero encode time.
    let second = runtime.run_batch(vec![plan("t1", format)]);
    assert_eq!(second.jobs[0].telemetry.cache, CacheOutcomeKind::Hit);
    assert_eq!(second.jobs[0].telemetry.encode_s, 0.0);
    assert_eq!(second.report.cache.misses, 0);

    // A *different* format on the same matrix is its own entry (and a miss).
    let wide = ReFloatConfig::new(format.b, format.e, format.f, format.ev, 16);
    let third = runtime.run_batch(vec![plan("t2", wide)]);
    assert_eq!(third.jobs[0].telemetry.cache, CacheOutcomeKind::Miss);
}

#[test]
fn skewed_traffic_reaches_a_high_hit_rate_and_sane_report() {
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 4,
        queue_capacity: 16,
        cache_capacity: 8,
        ..RuntimeConfig::default()
    });
    let outcome = runtime.run_batch(trace_plans(64));
    let report = &outcome.report;
    assert_eq!(report.jobs, 64);
    assert_eq!(report.converged, 64);
    // 4 distinct (matrix, format) keys for 64 jobs: at least 60/64 skip the encode.
    assert!(report.hit_rate() > 0.9, "hit rate {:.2}", report.hit_rate());
    assert!(report.throughput_jobs_per_s > 0.0);
    assert!(report.latency_p50_s <= report.latency_p99_s);
    assert!(report.latency_p99_s <= report.latency_max_s + 1e-12);
    assert!(report.queue_wait_p50_s <= report.queue_wait_p99_s);
    assert!(report.queue_depth_peak >= 1);
    assert!(report.queue_depth_peak <= 16);
    assert_eq!(report.cancelled_jobs, 0);
    // All trace traffic is standard priority; every lane is reported regardless.
    assert_eq!(report.per_priority.len(), 3);
    let standard = report
        .per_priority
        .iter()
        .find(|lane| lane.priority == Priority::Standard)
        .expect("standard lane present");
    assert_eq!(standard.jobs, 64);
    assert!(report
        .per_priority
        .iter()
        .all(|lane| lane.priority == Priority::Standard || lane.jobs == 0));
    assert!(report.simulated_cycles > 0);
    assert!(report.simulated_total_s > 0.0);
    let rendered = report.render();
    assert!(rendered.contains("hit rate"));
    assert!(rendered.contains("jobs/s"));
    assert!(rendered.contains("peak depth"));
}

#[test]
fn refined_jobs_reach_fp64_accuracy_where_plain_low_precision_stalls() {
    let a = refloat::matgen::generators::laplacian_2d(16, 16, 0.3).to_csr();
    let handle = MatrixHandle::new("poisson-16", a.clone());
    let b = vec![1.0; a.nrows()];
    // 3 fraction bits: far too coarse for 1e-12, stalls well above 1e-6.
    let format = ReFloatConfig::new(4, 3, 3, 3, 8);
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 3,
        ..Default::default()
    });
    let outcome = runtime.run_batch(vec![
        SolvePlan::new("plain", handle.clone(), format)
            .build()
            .unwrap(),
        SolvePlan::new("refined", handle.clone(), format)
            .refinement(RefinementSpec::to_target(1e-12))
            .build()
            .unwrap(),
    ]);

    let plain_rel = a.relative_residual(&b, &outcome.jobs[0].result.x);
    assert!(
        plain_rel > 1e-6,
        "plain low-precision solve should stall above 1e-6, got {plain_rel:.3e}"
    );
    let refined_rel = a.relative_residual(&b, &outcome.jobs[1].result.x);
    assert!(
        refined_rel <= 1e-12,
        "refined solve should reach fp64 accuracy, got {refined_rel:.3e}"
    );

    let tele = outcome.jobs[1]
        .telemetry
        .refinement
        .as_ref()
        .expect("refined job carries refinement telemetry");
    assert!(tele.final_relative_residual <= 1e-12);
    assert!(tele.outer_iterations >= 2);
    assert!(!tele.stalled);
    // The outer loop's fp64 residual work is charged to the host model.
    assert!(outcome.jobs[1].telemetry.simulated.host_fp64_s > 0.0);
    assert!(outcome.jobs[0].telemetry.refinement.is_none());
    assert_eq!(outcome.report.refined_jobs, 1);
}

#[test]
fn refined_jobs_are_deterministic_and_share_rung_encodings_via_the_cache() {
    let plans = || {
        let handle = MatrixHandle::new(
            "poisson-12",
            refloat::matgen::generators::laplacian_2d(12, 12, 0.4).to_csr(),
        );
        (0..6)
            .map(|i| {
                SolvePlan::new(
                    format!("tenant-{i}"),
                    handle.clone(),
                    ReFloatConfig::new(4, 3, 3, 3, 8),
                )
                .refinement(RefinementSpec::to_target(1e-12))
                .build()
                .unwrap()
            })
            .collect::<Vec<_>>()
    };

    let a = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        ..Default::default()
    })
    .run_batch(plans());
    let b = SolveRuntime::new(RuntimeConfig {
        workers: 5,
        ..Default::default()
    })
    .run_batch(plans());

    for (ja, jb) in a.jobs.iter().zip(b.jobs.iter()) {
        let bits_a: Vec<u64> = ja.result.x.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = jb.result.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "refined job {} numerics differ", ja.job_id);
        assert_eq!(
            ja.telemetry
                .refinement
                .as_ref()
                .map(|r| (r.outer_iterations, r.escalations)),
            jb.telemetry
                .refinement
                .as_ref()
                .map(|r| (r.outer_iterations, r.escalations)),
        );
    }

    // Six identical refined jobs share one encode per rung actually used: the miss
    // count is bounded by the ladder depth, not by the job count.
    let spec = RefinementSpec::default();
    let rungs = spec
        .escalation
        .ladder(ReFloatConfig::new(4, 3, 3, 3, 8))
        .len() as u64;
    assert!(
        a.report.cache.misses <= rungs,
        "{} misses for {} quantized rungs",
        a.report.cache.misses,
        rungs
    );
    assert!(a.report.cache.hits + a.report.cache.coalesced > 0);
}

#[test]
fn explicit_rhs_and_custom_tolerance_are_honoured() {
    let (handle, format, _) = catalog().remove(0);
    let n = handle.csr().nrows();
    let rhs = Arc::new(refloat::matgen::rhs::smooth(n));
    let runtime = SolveRuntime::new(RuntimeConfig::default());
    let outcome = runtime.run_batch(vec![
        SolvePlan::new("t", handle.clone(), format)
            .rhs(Arc::clone(&rhs))
            .solver_config(SolverConfig::relative(1e-4).with_max_iterations(500))
            .build()
            .unwrap(),
        SolvePlan::new("t", handle, format)
            .rhs(rhs)
            .solver_config(SolverConfig::relative(1e-10).with_max_iterations(500))
            .build()
            .unwrap(),
    ]);
    let loose = &outcome.jobs[0].result;
    let tight = &outcome.jobs[1].result;
    assert!(loose.converged() && tight.converged());
    assert!(loose.iterations < tight.iterations);
}

#[test]
fn sharded_solves_are_bitwise_identical_across_chip_counts() {
    // The determinism contract of the shard -> chip -> reduction pipeline: the same
    // job solved on 1, 2, 4 and 8 chips produces bit-identical iterates, because shard
    // cuts sit on block-row boundaries and the gather reorders nothing.
    let a = refloat::matgen::generators::laplacian_2d(24, 24, 0.3).to_csr();
    let handle = MatrixHandle::new("poisson-24", a);
    let format = ReFloatConfig::new(4, 3, 8, 3, 8);
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        // Tiny chips (2^9 crossbars -> 42 clusters at e = f = 3 paddings): the matrix
        // exceeds one chip's budget, the regime sharding exists for.
        chip_crossbars: Some(1 << 9),
        ..Default::default()
    });
    let outcome = runtime.run_batch(
        [1usize, 2, 4, 8]
            .into_iter()
            .map(|chips| {
                SolvePlan::new(format!("chips-{chips}"), handle.clone(), format)
                    .sharding(chips)
                    .build()
                    .unwrap()
            })
            .collect(),
    );

    let reference: Vec<u64> = outcome.jobs[0]
        .result
        .x
        .iter()
        .map(|v| v.to_bits())
        .collect();
    for job in &outcome.jobs[1..] {
        let bits: Vec<u64> = job.result.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits, reference,
            "{} numerics differ from the single-chip solve",
            job.telemetry.tenant
        );
        assert_eq!(job.result.iterations, outcome.jobs[0].result.iterations);
    }

    // Sharded jobs report their chip span and pay an inter-chip reduction; the
    // single-chip job does not.
    assert_eq!(outcome.jobs[0].telemetry.simulated.reduction_s, 0.0);
    for (job, chips) in outcome.jobs[1..].iter().zip([2usize, 4, 8]) {
        assert_eq!(job.telemetry.shards, chips);
        assert!(job.telemetry.simulated.reduction_s > 0.0);
    }
    assert_eq!(outcome.report.sharded_jobs, 3);
    assert!(outcome.report.reduction_total_s > 0.0);

    // Sharding an oversized matrix beats streaming it through one small chip.
    let single = outcome.jobs[0].telemetry.simulated.total_s;
    let quad = outcome.jobs[2].telemetry.simulated.total_s;
    assert!(
        single > 1.5 * quad,
        "4-chip makespan should win: {single:.3e}s vs {quad:.3e}s"
    );
}

#[test]
fn shard_encodings_flow_through_the_cache_per_shard() {
    let a = refloat::matgen::generators::laplacian_2d(20, 20, 0.3).to_csr();
    let handle = MatrixHandle::new("poisson-20", a);
    let format = ReFloatConfig::new(4, 3, 8, 3, 8);
    let sharded = |tenant: &str, shards: usize| {
        SolvePlan::new(tenant, handle.clone(), format)
            .sharding(shards)
            .build()
            .unwrap()
    };
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 1,
        ..Default::default()
    });

    // First 4-chip job: one miss per shard.
    let first = runtime.run_batch(vec![sharded("a", 4)]);
    let shard_misses = first.report.cache.misses;
    assert!(
        (2..=4).contains(&(shard_misses as usize)),
        "expected one miss per shard, got {shard_misses}"
    );

    // Same job again: every shard encoding is already cached.
    let second = runtime.run_batch(vec![sharded("b", 4)]);
    assert_eq!(second.report.cache.misses, 0);
    assert_eq!(second.report.cache.hits, shard_misses);
    assert_eq!(second.jobs[0].telemetry.encode_s, 0.0);

    // A different shard count is a different key set (plus the whole-matrix key for
    // an unsharded job): no false sharing.
    let third = runtime.run_batch(vec![sharded("c", 2)]);
    assert!(third.report.cache.misses >= 1);
    let fourth = runtime.run_batch(vec![SolvePlan::new("d", handle.clone(), format)
        .build()
        .unwrap()]);
    assert_eq!(fourth.report.cache.misses, 1);
}

#[test]
fn multi_rhs_batches_solve_every_column_bitwise_like_separate_jobs() {
    let a = refloat::matgen::generators::laplacian_2d(16, 16, 0.3).to_csr();
    let n = a.nrows();
    let handle = MatrixHandle::new("poisson-16", a);
    let format = ReFloatConfig::new(4, 3, 8, 3, 8);
    let rhss: Vec<std::sync::Arc<Vec<f64>>> = (0..3)
        .map(|k| {
            std::sync::Arc::new(
                (0..n)
                    .map(|i| 1.0 + ((i * (k + 3)) % 11) as f64 * 0.1)
                    .collect::<Vec<f64>>(),
            )
        })
        .collect();

    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        ..Default::default()
    });
    // One batched job + the same three RHS as separate jobs.
    let mut plans = vec![SolvePlan::new("batched", handle.clone(), format)
        .rhs_batch(rhss.clone())
        .build()
        .unwrap()];
    plans.extend(rhss.iter().map(|rhs| {
        SolvePlan::new("solo", handle.clone(), format)
            .rhs(rhs.clone())
            .build()
            .unwrap()
    }));
    let outcome = runtime.run_batch(plans);

    let batched = &outcome.jobs[0];
    assert_eq!(batched.extra_results.len(), 2);
    assert_eq!(batched.telemetry.rhs_count, 3);
    let batched_solutions: Vec<&Vec<f64>> = std::iter::once(&batched.result.x)
        .chain(batched.extra_results.iter().map(|r| &r.x))
        .collect();
    for (k, solo) in outcome.jobs[1..].iter().enumerate() {
        let solo_bits: Vec<u64> = solo.result.x.iter().map(|v| v.to_bits()).collect();
        let batch_bits: Vec<u64> = batched_solutions[k].iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            solo_bits, batch_bits,
            "rhs {k} differs between batch and solo"
        );
    }

    // The batch programmed the chip once for three solves; the telemetry shows the
    // amortization (its simulated total is below three cold solos).
    assert!(batched.telemetry.converged);
    assert_eq!(outcome.report.rhs_total, 6);
}

#[test]
fn auto_format_decisions_are_keyed_by_solver() {
    // CG and BiCGSTAB converge differently on the same quantized operator, so their
    // verification-measured decisions must not be shared (the iteration cap derived
    // from a CG trial could truncate a BiCGSTAB solve).
    let a = refloat::matgen::generators::laplacian_2d(12, 12, 0.4).to_csr();
    let handle = MatrixHandle::new("poisson-12", a.clone());
    let base = ReFloatConfig::new(4, 3, 8, 3, 8);
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 1,
        ..Default::default()
    });
    let outcome = runtime.run_batch(vec![
        SolvePlan::new("cg", handle.clone(), base)
            .auto_format(1e-6)
            .build()
            .unwrap(),
        SolvePlan::new("bicg", handle.clone(), base)
            .solver(SolverKind::BiCgStab)
            .auto_format(1e-6)
            .build()
            .unwrap(),
    ]);
    assert_eq!(
        outcome.report.decisions.misses, 2,
        "one analysis per solver"
    );
    let b = vec![1.0; a.nrows()];
    for job in &outcome.jobs {
        let tele = job.telemetry.autotune.as_ref().unwrap();
        assert!(!tele.decision_cached);
        assert!(job.telemetry.converged, "{} job", job.telemetry.tenant);
        assert!(a.relative_residual(&b, &job.result.x) <= 1e-6);
    }
}

#[test]
fn auto_format_jobs_converge_and_memoize_the_decision() {
    let a = refloat::matgen::generators::laplacian_2d(16, 16, 0.3).to_csr();
    let handle = MatrixHandle::new("poisson-16", a.clone());
    let b = vec![1.0; a.nrows()];
    let tolerance = 1e-6;
    // The job format only contributes its blocking b = 4; (e, f)(ev, fv) are tuned.
    let base = ReFloatConfig::new(4, 3, 8, 3, 8);
    let auto = |tenant: &str| {
        SolvePlan::new(tenant, handle.clone(), base)
            .auto_format(tolerance)
            .build()
            .unwrap()
    };
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 1, // serial workers: the second job must be a clean decision HIT
        ..Default::default()
    });

    let outcome = runtime.run_batch(vec![auto("t0"), auto("t1")]);
    let first = outcome.jobs[0]
        .telemetry
        .autotune
        .as_ref()
        .expect("auto job telemetry");
    let second = outcome.jobs[1]
        .telemetry
        .autotune
        .as_ref()
        .expect("auto job telemetry");

    // The first job paid for the analysis; the second identical job hit the
    // decision cache (the acceptance criterion of the auto-tuning subsystem).
    assert!(!first.decision_cached);
    assert!(first.analysis_s > 0.0);
    assert!(second.decision_cached);
    assert_eq!(second.analysis_s, 0.0);
    assert_eq!(first.chosen_format, second.chosen_format);
    assert_eq!(outcome.report.autotuned_jobs, 2);
    assert_eq!(outcome.report.autotune_decision_hits, 1);
    assert_eq!(outcome.report.autotune_fallbacks, 0);
    assert!(outcome.report.render().contains("autotune"));

    // The tuned format preserves the blocking, converges in true residual, and the
    // prediction is comparable to the achieved iteration count.
    assert_eq!(first.chosen_format.b, 4);
    assert!(!first.fell_back);
    assert!(first.achieved_relative_residual <= tolerance);
    let true_rel = a.relative_residual(&b, &outcome.jobs[0].result.x);
    assert!(true_rel <= tolerance, "true residual {true_rel:.3e}");
    assert!(first.predicted_iterations > 0);
    assert!(first.achieved_iterations > 0);
    assert!(first.kappa.is_finite() && first.kappa > 1.0);
    assert!(first.predicted_convergent && !first.degraded_confidence);
    // The residual check is charged to the host model even without a fallback.
    assert!(outcome.jobs[0].telemetry.simulated.host_fp64_s > 0.0);

    // A fresh batch on the same runtime still hits the persistent decision cache.
    let again = runtime.run_batch(vec![auto("t2")]);
    assert!(
        again.jobs[0]
            .telemetry
            .autotune
            .as_ref()
            .unwrap()
            .decision_cached
    );
    assert_eq!(again.report.decisions.hits, 1);
    assert_eq!(again.report.decisions.misses, 0);
}

#[test]
fn auto_format_decisions_are_keyed_by_tolerance() {
    let handle = MatrixHandle::new(
        "poisson-12",
        refloat::matgen::generators::laplacian_2d(12, 12, 0.4).to_csr(),
    );
    let base = ReFloatConfig::new(4, 3, 8, 3, 8);
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 1,
        ..Default::default()
    });
    let outcome = runtime.run_batch(vec![
        SolvePlan::new("loose", handle.clone(), base)
            .auto_format(1e-3)
            .build()
            .unwrap(),
        SolvePlan::new("tight", handle.clone(), base)
            .auto_format(1e-8)
            .build()
            .unwrap(),
    ]);
    assert_eq!(
        outcome.report.decisions.misses, 2,
        "two tolerances, two analyses"
    );
    let loose = outcome.jobs[0].telemetry.autotune.as_ref().unwrap();
    let tight = outcome.jobs[1].telemetry.autotune.as_ref().unwrap();
    // A tighter target can never be predicted cheaper per SpMV.
    assert!(loose.predicted_cycles_per_spmv <= tight.predicted_cycles_per_spmv);
    assert!(outcome.jobs.iter().all(|j| j.telemetry.converged));
}

#[test]
fn auto_format_falls_back_to_the_refinement_ladder_when_nothing_survives() {
    // κ ≈ 1e30: the eigen estimate degrades, no candidate is predicted convergent,
    // and the plain attempt at the best-effort format cannot reach the tolerance —
    // the refinement ladder must engage (and honestly report its stall).
    let a = refloat::matgen::generators::logspace_diagonal(600, 1e-30, 1.0).to_csr();
    let handle = MatrixHandle::new("singular-600", a);
    let base = ReFloatConfig::new(4, 3, 8, 3, 8);
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 1,
        ..Default::default()
    });
    let spec = AutoFormatSpec::to_target(1e-8).with_escalation(EscalationPolicy::fp64_only());
    let outcome = runtime.run_batch(vec![SolvePlan::new("t", handle, base)
        .solver_config(SolverConfig::relative(1e-8).with_max_iterations(500))
        .auto_format_spec(spec)
        .build()
        .unwrap()]);

    let tele = outcome.jobs[0].telemetry.autotune.as_ref().unwrap();
    assert!(tele.degraded_confidence);
    assert!(!tele.predicted_convergent);
    assert!(tele.fell_back, "the refinement fallback must engage");
    assert!(
        outcome.jobs[0].telemetry.refinement.is_some(),
        "fallback jobs carry refinement telemetry"
    );
    assert_eq!(outcome.report.autotune_fallbacks, 1);
    // The matrix is numerically singular, so even the ladder may stall — but the
    // telemetry must say so rather than claim convergence.
    let refinement = outcome.jobs[0].telemetry.refinement.as_ref().unwrap();
    assert_eq!(
        outcome.jobs[0].telemetry.converged,
        refinement.final_relative_residual <= 1e-8
    );
}

#[test]
fn auto_format_composes_with_sharding() {
    let a = refloat::matgen::generators::laplacian_2d(20, 20, 0.3).to_csr();
    let handle = MatrixHandle::new("poisson-20", a.clone());
    let b = vec![1.0; a.nrows()];
    let base = ReFloatConfig::new(4, 3, 8, 3, 8);
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        chip_crossbars: Some(1 << 10),
        ..Default::default()
    });
    let outcome = runtime.run_batch(vec![SolvePlan::new("t", handle, base)
        .auto_format(1e-6)
        .sharding(2)
        .build()
        .unwrap()]);
    let job = &outcome.jobs[0];
    assert_eq!(job.telemetry.shards, 2);
    assert!(job.telemetry.simulated.reduction_s > 0.0);
    let tele = job.telemetry.autotune.as_ref().unwrap();
    assert!(!tele.fell_back);
    assert!(job.telemetry.converged);
    let true_rel = a.relative_residual(&b, &job.result.x);
    assert!(true_rel <= 1e-6, "true residual {true_rel:.3e}");
}

#[test]
fn sharded_multi_rhs_jobs_combine_both_axes() {
    let a = refloat::matgen::generators::laplacian_2d(20, 20, 0.4).to_csr();
    let n = a.nrows();
    let handle = MatrixHandle::new("poisson-20", a);
    let format = ReFloatConfig::new(4, 3, 8, 3, 8);
    let rhss: Vec<std::sync::Arc<Vec<f64>>> = (0..2)
        .map(|k| std::sync::Arc::new(vec![1.0 + k as f64; n]))
        .collect();

    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        chip_crossbars: Some(1 << 9),
        ..Default::default()
    });
    let reference = runtime.run_batch(vec![SolvePlan::new("ref", handle.clone(), format)
        .rhs_batch(rhss.clone())
        .build()
        .unwrap()]);
    let sharded = runtime.run_batch(vec![SolvePlan::new("sharded", handle.clone(), format)
        .rhs_batch(rhss)
        .sharding(4)
        .build()
        .unwrap()]);

    let r = &reference.jobs[0];
    let s = &sharded.jobs[0];
    for (a_res, b_res) in std::iter::once((&r.result, &s.result))
        .chain(r.extra_results.iter().zip(s.extra_results.iter()))
    {
        let ab: Vec<u64> = a_res.x.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u64> = b_res.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb);
    }
    assert_eq!(s.telemetry.shards, 4);
    assert_eq!(s.telemetry.rhs_count, 2);
    assert!(s.telemetry.simulated.reduction_s > 0.0);
}

// ---------------------------------------------------------------------------
// Service mode: SolveClient tickets, QoS scheduling, cancellation, drain.
// ---------------------------------------------------------------------------

#[test]
fn tickets_resolve_through_wait_try_get_and_wait_timeout() {
    let (handle, format, _) = catalog().remove(0);
    let client = SolveRuntime::start(RuntimeConfig {
        workers: 2,
        ..Default::default()
    });

    let t0 = client
        .submit(SolvePlan::new("w", handle.clone(), format).build().unwrap())
        .expect("open client admits");
    let outcome = t0.wait().completed().expect("ran to completion");
    assert!(outcome.result.converged());

    let t1 = client
        .submit(
            SolvePlan::new("wt", handle.clone(), format)
                .build()
                .unwrap(),
        )
        .expect("open client admits");
    // Generous timeout: the job is a cache hit on a warm pool.
    let outcome = match t1.wait_timeout(Duration::from_secs(60)) {
        Ok(outcome) => outcome.completed().expect("ran to completion"),
        Err(_) => panic!("a 60 s timeout must suffice for a tiny solve"),
    };
    assert!(outcome.result.converged());

    // try_get eventually observes the completion without blocking.
    let mut t2 = client
        .submit(
            SolvePlan::new("tg", handle.clone(), format)
                .build()
                .unwrap(),
        )
        .expect("open client admits");
    let outcome = loop {
        match t2.try_get() {
            Ok(outcome) => break outcome,
            Err(ticket) => {
                t2 = ticket;
                std::thread::yield_now();
            }
        }
    };
    assert!(outcome.completed().expect("completed").result.converged());

    let report = client.shutdown();
    assert_eq!(report.jobs, 3);
    assert_eq!(report.converged, 3);
}

#[test]
fn submit_after_drain_returns_the_plan_instead_of_dropping_it() {
    // Regression: the old teardown path lost (or panicked on) jobs pushed after the
    // queue closed.  The service hands the plan back as a typed error.
    let (handle, format, _) = catalog().remove(0);
    let client = SolveRuntime::start(RuntimeConfig {
        workers: 1,
        ..Default::default()
    });
    let ticket = client
        .submit(
            SolvePlan::new("early", handle.clone(), format)
                .build()
                .unwrap(),
        )
        .expect("open client admits");
    client.drain();
    // The accepted job completed; the late one is refused with its plan intact.
    assert!(ticket.wait().completed().is_some());
    let late = SolvePlan::new("late", handle.clone(), format)
        .priority(Priority::Interactive)
        .build()
        .unwrap();
    match client.submit(late) {
        Err(SubmitError::Closed(plan)) => {
            assert_eq!(plan.tenant(), "late");
            assert_eq!(plan.priority(), Priority::Interactive);
        }
        Ok(_) => panic!("a drained client must not admit new plans"),
        Err(other) => panic!("a single-node client never sheds, got {other}"),
    }
    let report = client.shutdown();
    assert_eq!(report.jobs, 1, "the late plan was refused, not lost");
}

#[test]
fn cancel_before_start_refunds_everything() {
    // A cancelled-before-start job must be a complete refund: no simulated cycles,
    // no cache traffic, no telemetry row — the report matches a run that never
    // submitted it.
    let slow = MatrixHandle::new(
        "poisson-48",
        refloat::matgen::generators::laplacian_2d(48, 48, 0.2).to_csr(),
    );
    let format = ReFloatConfig::new(4, 3, 8, 3, 8);

    // Reference: just the long job, alone.
    let reference = SolveRuntime::new(RuntimeConfig {
        workers: 1,
        ..Default::default()
    })
    .run_batch(vec![SolvePlan::new("only", slow.clone(), format)
        .build()
        .unwrap()]);
    let reference_cycles = reference.report.simulated_cycles;
    assert!(reference_cycles > 0);

    let client = SolveRuntime::start(RuntimeConfig {
        workers: 1,
        ..Default::default()
    });
    let running = client
        .submit(
            SolvePlan::new("only", slow.clone(), format)
                .build()
                .unwrap(),
        )
        .unwrap();
    // Queue three batch jobs behind the long solve and cancel them before the
    // single worker can reach them.
    let queued: Vec<_> = (0..3)
        .map(|i| {
            client
                .submit(
                    SolvePlan::new(format!("cancel-{i}"), slow.clone(), format)
                        .priority(Priority::Batch)
                        .build()
                        .unwrap(),
                )
                .unwrap()
        })
        .collect();
    for ticket in &queued {
        assert!(ticket.cancel(), "job should still be pending");
        assert!(!ticket.cancel(), "double cancel finds nothing to dequeue");
    }
    for ticket in queued {
        assert!(ticket.wait().is_cancelled());
    }
    assert!(running.wait().completed().is_some());

    let report = client.shutdown();
    assert_eq!(report.jobs, 1);
    assert_eq!(report.cancelled_jobs, 3);
    assert_eq!(
        report.simulated_cycles, reference_cycles,
        "cancelled jobs must not charge chip cycles"
    );
    assert_eq!(report.cache.misses, reference.report.cache.misses);
    assert!(report.render().contains("cancelled"));
}

#[test]
fn sustained_interactive_load_does_not_starve_batch_jobs() {
    // One batch job submitted into an interactive flood on a single worker: with
    // age promotion it must overtake the tail of the flood (under strict priority
    // with no promotion it would run dead last).  Queue waits grow monotonically
    // with dequeue order on a single worker, so wait comparisons recover the order.
    let (handle, format, _) = catalog().remove(2); // poisson-12, quick solves
    let plan = |tenant: &str, priority: Priority| {
        SolvePlan::new(tenant, handle.clone(), format)
            .priority(priority)
            .build()
            .unwrap()
    };
    let client = SolveRuntime::start(RuntimeConfig {
        workers: 1,
        queue_capacity: 64,
        scheduler: SchedulerPolicy::priority(2),
        ..Default::default()
    });
    let mut interactive = Vec::new();
    for i in 0..20 {
        interactive.push(
            client
                .submit(plan(&format!("i{i}"), Priority::Interactive))
                .unwrap(),
        );
    }
    let batch = client.submit(plan("batch", Priority::Batch)).unwrap();
    for i in 20..40 {
        interactive.push(
            client
                .submit(plan(&format!("i{i}"), Priority::Interactive))
                .unwrap(),
        );
    }
    let batch_wait = batch
        .wait()
        .completed()
        .expect("batch job completes")
        .telemetry
        .queue_wait_s;
    let interactive_waits: Vec<f64> = interactive
        .into_iter()
        .map(|t| {
            t.wait()
                .completed()
                .expect("completes")
                .telemetry
                .queue_wait_s
        })
        .collect();
    let overtaken = interactive_waits
        .iter()
        .filter(|&&w| w > batch_wait)
        .count();
    assert!(
        overtaken >= 10,
        "age promotion should let the batch job overtake most of the late flood; \
         it overtook only {overtaken}/40"
    );
    let report = client.shutdown();
    assert_eq!(report.jobs, 41);
    // Interactive and batch saw traffic; the standard lane still reports (empty).
    assert_eq!(report.per_priority.len(), 3);
}

#[test]
fn invalid_plans_are_typed_errors_not_panics() {
    // The workspace-level guarantee behind the API redesign: every invalid
    // combination surfaces as a PlanError before submission; nothing panics.
    let (handle, format, _) = catalog().remove(0);
    let n = handle.csr().nrows();
    let err = SolvePlan::new("t", handle.clone(), format)
        .sharding(0)
        .refinement(RefinementSpec::to_target(1e-10))
        .auto_format(f64::NAN)
        .rhs_batch(vec![Arc::new(vec![1.0; n + 1])])
        .build()
        .unwrap_err();
    assert!(err.contains(&PlanViolation::ZeroShards));
    assert!(err.contains(&PlanViolation::RefinementWithAutoFormat));
    assert!(err.contains(&PlanViolation::RhsLengthMismatch {
        index: 0,
        expected: n,
        got: n + 1
    }));
    assert!(err
        .violations
        .iter()
        .any(|v| matches!(v, PlanViolation::InvalidTolerance { .. })));
    // Display lists every violation for the operator.
    let rendered = err.to_string();
    assert!(rendered.contains("violation"));
}
