//! Workspace-level tests of the reliability stack: fault injection must be off by
//! default (and bit-clean under a pristine model), ABFT must detect and bound the
//! damage of stuck-cell corruption, disabling ABFT must corrupt *silently* (the
//! control arm), killed chips must never lose a job, and the cluster router must
//! steer traffic away from dead nodes.

use refloat::prelude::*;
use refloat::runtime::{metric_names, DegradedReason};
use refloat::sim::FaultModelConfig;

fn hot_matrix() -> MatrixHandle {
    MatrixHandle::new(
        "poisson-16",
        refloat::matgen::generators::laplacian_2d(16, 16, 0.3).to_csr(),
    )
}

fn format() -> ReFloatConfig {
    ReFloatConfig::new(4, 3, 8, 3, 8)
}

fn plans(count: usize) -> Vec<SolvePlan> {
    let handle = hot_matrix();
    (0..count)
        .map(|i| {
            SolvePlan::new(format!("tenant-{}", i % 3), handle.clone(), format())
                .solver_config(
                    SolverConfig::relative(1e-8)
                        .with_max_iterations(2_000)
                        .with_trace(false),
                )
                .build()
                .expect("valid plan")
        })
        .collect()
}

/// Stuck rates high enough that the 2+2 spare budget cannot absorb every defect:
/// uncovered cells survive the remap and actively corrupt the analog MVM.
fn heavy_faults(seed: u64) -> FaultModelConfig {
    FaultModelConfig {
        seed,
        stuck_low_rate: 2e-2,
        stuck_high_rate: 4e-3,
        drift_sigma: 0.0,
        wear_growth: 0.0,
    }
}

#[test]
fn pristine_fault_model_is_bitwise_clean_and_pays_only_the_abft_cycle() {
    // Reference: the default runtime, no fault policy at all.
    let clean = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        ..RuntimeConfig::default()
    })
    .run_batch(plans(6));

    // Fault injection on, but with an explicitly fault-free device: the remap is
    // a no-op, drift is 1.0, and the ABFT probe never fires — numerics must be
    // bit-identical to the clean runtime; only the simulated checksum cycles and
    // the probe SpMV differ.
    let policy = FaultPolicy::realistic(7).with_model(FaultModelConfig::pristine(7));
    let faulty = SolveRuntime::new(RuntimeConfig {
        workers: 2,
        fault: Some(policy),
        ..RuntimeConfig::default()
    })
    .run_batch(plans(6));

    for (a, b) in clean.jobs.iter().zip(faulty.jobs.iter()) {
        assert_eq!(a.result.iterations, b.result.iterations);
        let bits_a: Vec<u64> = a.result.x.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = b.result.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "pristine fault model changed job numerics");
    }
    assert_eq!(faulty.report.faults_detected, 0);
    assert_eq!(faulty.report.fault_retries, 0);
    assert_eq!(faulty.report.degraded_jobs, 0);
    assert!(
        faulty.report.simulated_cycles > clean.report.simulated_cycles,
        "ABFT checksum column and probe must be charged to the chip model"
    );
    let rendered = faulty.report.render();
    assert!(rendered.contains("reliability"));
}

#[test]
fn heavy_faults_are_detected_retried_and_every_ticket_resolves() {
    let clean = SolveRuntime::new(RuntimeConfig {
        workers: 1,
        ..RuntimeConfig::default()
    })
    .run_batch(plans(1));
    let clean_iterations = clean.jobs[0].result.iterations;

    let policy = FaultPolicy::realistic(3).with_model(heavy_faults(3));
    let client = SolveRuntime::start(RuntimeConfig {
        workers: 2,
        fault: Some(policy),
        ..RuntimeConfig::default()
    });
    let tickets: Vec<SolveTicket> = plans(12)
        .into_iter()
        .map(|p| client.submit(p).expect("accepting"))
        .collect();

    let (mut completed, mut degraded) = (0usize, 0usize);
    for ticket in tickets {
        match ticket.wait() {
            TicketOutcome::Completed(outcome) => {
                completed += 1;
                // Bounded damage: a job that survived ABFT (possibly after
                // re-encode retries) pays at most a small iteration overhead.
                assert!(outcome.result.converged(), "survivors must converge");
                assert!(
                    outcome.result.iterations <= 3 * clean_iterations + 10,
                    "unbounded iteration overhead: {} vs clean {}",
                    outcome.result.iterations,
                    clean_iterations
                );
            }
            TicketOutcome::Degraded(job) => {
                degraded += 1;
                assert_eq!(job.reason, DegradedReason::AbftUnresolved);
                assert!(
                    job.outcome.is_some(),
                    "ABFT-unresolved jobs carry the best-effort solve"
                );
            }
            other => panic!("a faulty chip must not lose or fail jobs: {other:?}"),
        }
    }
    assert_eq!(completed + degraded, 12, "zero lost jobs");

    let detections = client.health().total_detections();
    assert!(detections > 0, "heavy stuck rates must trip the ABFT probe");
    let report = client.shutdown();
    assert!(report.faults_detected > 0);
    assert_eq!(report.jobs, completed);
    assert_eq!(report.degraded_jobs as usize, degraded);
    assert!(report.render().contains("reliability"));
}

#[test]
fn disabling_abft_lets_the_same_faults_corrupt_silently() {
    let a = hot_matrix().csr().clone();
    let b = vec![1.0; a.nrows()];

    // Control arm: same heavy defects, checksum test off.  Nothing detects, no
    // job degrades — and the answer is detectably wrong in true fp64 residual.
    let silent = SolveRuntime::new(RuntimeConfig {
        workers: 1,
        fault: Some(
            FaultPolicy::realistic(3)
                .with_model(heavy_faults(3))
                .without_abft(),
        ),
        ..RuntimeConfig::default()
    })
    .run_batch(plans(2));
    assert_eq!(silent.report.faults_detected, 0, "no ABFT, no detections");
    assert_eq!(silent.report.degraded_jobs, 0);
    for job in &silent.jobs {
        let true_rel = a.relative_residual(&b, &job.result.x);
        assert!(
            true_rel > 1e-8,
            "silent corruption should be detectably wrong, got {true_rel:.3e}"
        );
    }
}

#[test]
fn a_zero_retry_budget_degrades_detected_jobs_typed() {
    let policy = FaultPolicy::realistic(3)
        .with_model(heavy_faults(3))
        .with_max_retries(0);
    let client = SolveRuntime::start(RuntimeConfig {
        workers: 1,
        fault: Some(policy),
        ..RuntimeConfig::default()
    });
    let tickets: Vec<SolveTicket> = plans(4)
        .into_iter()
        .map(|p| client.submit(p).expect("accepting"))
        .collect();
    let degraded = tickets
        .into_iter()
        .map(|t| t.wait())
        .filter(|outcome| {
            // Every ticket resolves; with no retry budget a detected corruption
            // degrades immediately.
            matches!(outcome, TicketOutcome::Degraded(job)
                if job.reason == DegradedReason::AbftUnresolved && job.outcome.is_some())
        })
        .count();
    assert!(degraded > 0, "heavy faults with zero retries must degrade");
    let report = client.shutdown();
    assert_eq!(report.degraded_jobs as usize, degraded);
    assert_eq!(report.fault_retries, 0, "no retry budget, no retries");
}

#[test]
fn a_killed_chip_reroutes_to_the_surviving_worker() {
    let client = SolveRuntime::start(RuntimeConfig {
        workers: 2,
        ..RuntimeConfig::default()
    });
    assert!(client.kill_chip(0), "first kill reports true");
    assert!(!client.kill_chip(0), "kills are idempotent");

    let tickets: Vec<SolveTicket> = plans(8)
        .into_iter()
        .map(|p| client.submit(p).expect("accepting"))
        .collect();
    for ticket in tickets {
        assert!(
            ticket.wait().completed().is_some(),
            "a live peer exists, so every job completes cleanly"
        );
    }
    let report = client.shutdown();
    assert_eq!(report.jobs, 8);
    assert_eq!(report.chips_killed, 1);
    assert_eq!(report.degraded_jobs, 0);
    assert_eq!(
        report.per_worker_jobs[0], 0,
        "the killed worker completes nothing"
    );
    assert_eq!(report.per_worker_jobs[1], 8);
}

#[test]
fn killing_the_last_chip_degrades_jobs_instead_of_losing_them() {
    let client = SolveRuntime::start(RuntimeConfig {
        workers: 1,
        ..RuntimeConfig::default()
    });
    assert!(client.kill_chip(0));

    // The single worker is dead: the first admitted job must resolve as the
    // typed Degraded outcome, never hang or vanish.
    let ticket = client
        .submit(plans(1).remove(0))
        .expect("admission is still open at kill time");
    match ticket.wait() {
        TicketOutcome::Degraded(job) => {
            assert_eq!(job.reason, DegradedReason::ChipKilled);
            assert!(job.outcome.is_none(), "the job never touched a chip");
        }
        other => panic!("expected a typed Degraded outcome, got {other:?}"),
    }

    // Afterwards the dead node closes its queue: a late plan is either refused
    // typed (plan handed back) or degraded typed — never lost.
    match client.submit(plans(1).remove(0)) {
        Ok(late) => assert!(late.wait().is_degraded()),
        Err(err) => assert!(matches!(err, refloat::runtime::SubmitError::Closed(_))),
    }

    let report = client.shutdown();
    assert_eq!(report.jobs, 0, "nothing completed cleanly");
    assert!(report.degraded_jobs >= 1);
    assert_eq!(report.chips_killed, 1);
}

#[test]
fn the_cluster_steers_traffic_away_from_a_dead_node() {
    let client = ClusterRuntime::start(ClusterConfig::uniform(
        2,
        RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        },
    ));
    // Kill both chips of node 0 (pool-global workers 0 and 1).
    assert!(client.kill_chip(0));
    assert!(client.kill_chip(1));

    let tickets: Vec<SolveTicket> = plans(12)
        .into_iter()
        .map(|p| client.submit(p).expect("cluster is accepting"))
        .collect();
    for ticket in tickets {
        assert!(
            ticket.wait().completed().is_some(),
            "node 1 is alive: the router must land every job there"
        );
    }

    let live = client.metrics_snapshot();
    assert!(
        live.counter(metric_names::ROUTE_HEALTH_STEERS).unwrap() > 0,
        "some placements must differ from the health-blind baseline"
    );
    let report = client.shutdown();
    assert_eq!(report.jobs, 12);
    assert_eq!(report.chips_killed, 2);
    assert_eq!(report.degraded_jobs, 0);
    assert_eq!(
        report.per_node_jobs[0], 0,
        "the dead node completes nothing: {:?}",
        report.per_node_jobs
    );
    assert_eq!(report.per_node_jobs[1], 12);
}
