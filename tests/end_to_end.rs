//! Cross-crate integration: workload generation → blocking → quantization → solvers →
//! hardware timing, exercising the same pipeline the Fig. 8 experiment uses but on
//! small problem sizes so it stays fast in debug builds.

use refloat::core::feinberg::FeinbergOperator;
use refloat::prelude::*;

/// A small crystm-like workload (tiny values, mass-matrix structure).
fn crystm_small() -> CsrMatrix {
    refloat::matgen::generators::mass_matrix_3d(8, 8, 8, 1e-12, 0.8, 42).to_csr()
}

/// A small unit-scale workload (Poisson).
fn poisson_small() -> CsrMatrix {
    refloat::matgen::generators::laplacian_2d(24, 24, 0.2).to_csr()
}

#[test]
fn refloat_converges_where_feinberg_fails_and_fp64_is_the_reference() {
    let a = crystm_small();
    let b = vec![1.0; a.nrows()];
    let cfg = SolverConfig::relative(1e-8).with_max_iterations(3_000);

    let exact = cg(&mut a.clone(), &b, &cfg);
    assert!(exact.converged(), "FP64 must converge: {:?}", exact.stop);

    let format = ReFloatConfig::new(5, 3, 3, 3, 8);
    let mut rf = ReFloatMatrix::from_csr(&a, format);
    let quant = cg(&mut rf, &b, &cfg);
    assert!(quant.converged(), "ReFloat must converge: {:?}", quant.stop);
    assert!(
        quant.iterations as f64 <= 2.5 * exact.iterations as f64 + 10.0,
        "ReFloat iteration overhead too large: {} vs {}",
        quant.iterations,
        exact.iterations
    );

    let mut fb = FeinbergOperator::new(a.clone());
    let feinberg = cg(
        &mut fb,
        &b,
        &SolverConfig::relative(1e-8).with_max_iterations(500),
    );
    assert!(
        !feinberg.converged(),
        "the Feinberg fixed-window baseline must fail on tiny-valued matrices"
    );
}

#[test]
fn feinberg_succeeds_on_unit_scale_matrices_and_matches_fp64_iterations() {
    let a = poisson_small();
    let b = vec![1.0; a.nrows()];
    let cfg = SolverConfig::relative(1e-8);
    let exact = cg(&mut a.clone(), &b, &cfg);
    let mut fb = FeinbergOperator::new(a.clone());
    let feinberg = cg(&mut fb, &b, &cfg);
    assert!(exact.converged() && feinberg.converged());
    assert_eq!(exact.iterations, feinberg.iterations);
}

#[test]
fn bicgstab_and_cg_agree_on_the_solution_under_refloat() {
    let a = poisson_small();
    let x_star: Vec<f64> = (0..a.nrows())
        .map(|i| ((i % 7) as f64) / 7.0 + 0.5)
        .collect();
    let b = a.spmv(&x_star);
    // The (ev, fv) = (3, 10) vector quantization floors the *true* residual of this
    // system around 1e-2 relative; below that the recursive residual decouples from
    // reality (the quantized apply is weakly input-dependent), so asking for 1e-9
    // would only be "met" by that fiction — and BiCGSTAB, which now restarts instead
    // of riding a diverging recurrence, honestly reports the stall.  1e-4 is within
    // what both recurrences genuinely deliver here.
    let cfg = SolverConfig::relative(1e-4);
    let format = ReFloatConfig::new(5, 3, 8, 3, 10);

    let mut op1 = ReFloatMatrix::from_csr(&a, format);
    let r_cg = cg(&mut op1, &b, &cfg);
    let mut op2 = ReFloatMatrix::from_csr(&a, format);
    let r_bi = bicgstab(&mut op2, &b, &cfg);
    assert!(r_cg.converged() && r_bi.converged());
    // Both solve a (slightly different, vector-quantization-dependent) perturbation of
    // the same quantized system, so the solutions agree to roughly the vector fraction
    // error amplified by the condition number — a few percent here.
    let diff = refloat::sparse::vecops::rel_err(&r_cg.x, &r_bi.x);
    assert!(
        diff < 5e-2,
        "CG and BiCGSTAB should find (nearly) the same solution: {diff}"
    );
    assert!(refloat::sparse::vecops::rel_err(&r_cg.x, &x_star) < 5e-2);
}

#[test]
fn timing_model_orders_platforms_the_way_fig8_does() {
    let a = crystm_small();
    let b = vec![1.0; a.nrows()];
    let cfg = SolverConfig::relative(1e-8).with_max_iterations(3_000);
    let exact = cg(&mut a.clone(), &b, &cfg);
    let format = ReFloatConfig::new(7, 3, 3, 3, 8);
    let mut rf = ReFloatMatrix::from_csr(&a, format);
    let quant = cg(&mut rf, &b, &cfg);
    assert!(exact.converged() && quant.converged());

    let blocked = BlockedMatrix::from_csr(&a, 7).unwrap();
    let blocks = blocked.num_blocks() as u64;
    let gpu = GpuModel::v100().solver_time_s(
        a.nnz() as u64,
        a.nrows() as u64,
        exact.iterations as u64,
        SolverKind::Cg,
    );
    let refloat_t = AcceleratorConfig::refloat(&format)
        .solver_time(blocks, quant.iterations as u64, SolverKind::Cg)
        .solver_total_s;
    let feinberg_fc_t = AcceleratorConfig::feinberg()
        .solver_time(blocks, exact.iterations as u64, SolverKind::Cg)
        .solver_total_s;

    // The Fig. 8 ordering on small/medium matrices: ReFloat fastest, Feinberg-fc in
    // between or near the GPU, GPU slowest among the three normalized baselines.
    assert!(refloat_t < feinberg_fc_t, "ReFloat must beat Feinberg-fc");
    assert!(refloat_t < gpu, "ReFloat must beat the GPU model");
}

#[test]
fn solver_trace_supports_fig9_style_comparison() {
    let a = poisson_small();
    let b = vec![1.0; a.nrows()];
    let cfg = SolverConfig::relative(1e-8);
    let exact = cg(&mut a.clone(), &b, &cfg);
    let mut rf = ReFloatMatrix::from_csr(&a, ReFloatConfig::new(5, 3, 3, 3, 8));
    let quant = cg(&mut rf, &b, &cfg);

    // Both traces start at the same initial residual (‖b‖) and end below the threshold.
    assert!((exact.trace[0] - quant.trace[0]).abs() < 1e-9);
    let threshold = 1e-8 * refloat::sparse::vecops::norm2(&b);
    assert!(*exact.trace.last().unwrap() < threshold);
    assert!(*quant.trace.last().unwrap() < threshold);
}
