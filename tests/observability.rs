//! Workspace-level tests of the observability layer: the live metrics registry must
//! be pollable on an undrained runtime, trace streams must honour the deterministic
//! export contract, and the JSONL export must round-trip through the serde shim.

use std::sync::Arc;

use refloat::prelude::*;
use refloat::runtime::{metric_names, parse_jsonl, ManualClock, SpanKind, TraceSink};

/// A small deterministic mixed trace (two matrices, skewed 2:1).
fn plans(count: usize) -> Vec<SolvePlan> {
    let poisson = MatrixHandle::new(
        "poisson-12",
        refloat::matgen::generators::laplacian_2d(12, 12, 0.3).to_csr(),
    );
    let mass = MatrixHandle::new(
        "mass-5",
        refloat::matgen::generators::mass_matrix_3d(5, 5, 5, 1e-12, 0.5, 3).to_csr(),
    );
    let format = ReFloatConfig::new(4, 3, 8, 3, 8);
    (0..count)
        .map(|i| {
            let handle = if i % 3 == 2 { &mass } else { &poisson };
            SolvePlan::new(format!("tenant-{}", i % 4), handle.clone(), format)
                .solver_config(
                    SolverConfig::relative(1e-8)
                        .with_max_iterations(2_000)
                        .with_trace(false),
                )
                .build()
                .expect("valid plan")
        })
        .collect()
}

#[test]
fn live_metrics_snapshot_is_populated_before_drain() {
    let client = SolveRuntime::start(RuntimeConfig {
        workers: 2,
        queue_capacity: 32,
        ..RuntimeConfig::default()
    });

    // Poll the registry before any traffic: the full vocabulary exists at zero, so
    // dashboards keyed on a metric name never key-error.
    let idle = client.metrics_snapshot();
    assert!(!idle.is_empty());
    assert_eq!(idle.counter(metric_names::JOBS_COMPLETED), Some(0));
    assert_eq!(idle.gauge(metric_names::WORKERS), Some(2.0));
    // The reliability vocabulary is registered at spawn even with faults off.
    assert_eq!(idle.counter(metric_names::FAULTS_DETECTED), Some(0));
    assert_eq!(idle.counter(metric_names::FAULT_RETRIES), Some(0));
    assert_eq!(idle.counter(metric_names::JOBS_DEGRADED), Some(0));
    assert_eq!(idle.counter(metric_names::JOBS_REROUTED), Some(0));
    assert_eq!(idle.counter(metric_names::CHIPS_KILLED), Some(0));

    // Submit traffic and wait for completion — but do NOT shut down: the runtime is
    // live and undrained when the snapshot is taken.
    let tickets: Vec<SolveTicket> = plans(9)
        .into_iter()
        .map(|p| client.submit(p).expect("service is accepting"))
        .collect();
    for ticket in tickets {
        assert!(ticket.wait().completed().is_some());
    }

    let live = client.metrics_snapshot();
    assert_eq!(live.counter(metric_names::JOBS_COMPLETED), Some(9));
    assert_eq!(live.counter(metric_names::JOBS_CONVERGED), Some(9));
    let hits = live.counter(metric_names::CACHE_HITS).unwrap();
    let misses = live.counter(metric_names::CACHE_MISSES).unwrap();
    let coalesced = live.counter(metric_names::CACHE_COALESCED).unwrap();
    assert_eq!(hits + misses + coalesced, 9);
    assert_eq!(live.histogram(metric_names::LATENCY_S).unwrap().count, 9);
    assert!(live.counter(metric_names::SIMULATED_CYCLES).unwrap() > 0);

    // The drained report's registry-backed aggregate agrees with the live registry.
    let report = client.shutdown();
    assert_eq!(report.jobs as u64, 9);
    assert_eq!(
        report.metrics.counter(metric_names::JOBS_COMPLETED),
        Some(9)
    );
    assert_eq!(
        report.metrics.counter(metric_names::SIMULATED_CYCLES),
        live.counter(metric_names::SIMULATED_CYCLES)
    );
}

#[test]
fn a_live_undrained_cluster_reports_node_and_tenant_dimensions() {
    let client = ClusterRuntime::start(ClusterConfig::uniform(
        2,
        RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        },
    ));

    // The cluster vocabulary is registered at spawn, before any traffic, so a
    // dashboard keyed on node/tenant metric names never key-errors.
    let idle = client.metrics_snapshot();
    assert_eq!(idle.gauge(metric_names::NODES), Some(2.0));
    assert_eq!(idle.gauge(metric_names::WORKERS), Some(4.0));
    assert_eq!(idle.gauge(metric_names::TENANTS_ACTIVE), Some(0.0));
    assert_eq!(idle.counter(metric_names::JOBS_ROUTED), Some(0));
    assert_eq!(idle.counter(metric_names::ROUTE_AFFINITY_HITS), Some(0));
    assert_eq!(idle.counter(metric_names::ROUTE_SPILLS), Some(0));
    assert_eq!(idle.counter(metric_names::JOBS_SHED_OVERLOAD), Some(0));
    assert_eq!(idle.counter(metric_names::JOBS_SHED_QUOTA), Some(0));
    assert_eq!(idle.counter(metric_names::ROUTE_HEALTH_STEERS), Some(0));
    assert_eq!(idle.counter(metric_names::JOBS_DEGRADED), Some(0));
    assert_eq!(idle.counter(metric_names::JOBS_REROUTED), Some(0));
    assert_eq!(idle.counter(metric_names::CHIPS_KILLED), Some(0));
    for node in 0..2 {
        assert_eq!(
            idle.counter(&metric_names::node_jobs_completed(node)),
            Some(0),
            "node {node} counter exists at zero"
        );
    }

    // Serve traffic and poll again WITHOUT shutting down: the cluster is live and
    // undrained when this snapshot is taken.
    let tickets: Vec<SolveTicket> = plans(12)
        .into_iter()
        .map(|p| client.submit(p).expect("cluster is accepting"))
        .collect();
    for ticket in tickets {
        assert!(ticket.wait().completed().is_some());
    }
    let live = client.metrics_snapshot();
    assert_eq!(live.counter(metric_names::JOBS_COMPLETED), Some(12));
    assert_eq!(live.counter(metric_names::JOBS_ROUTED), Some(12));
    let per_node: u64 = (0..2)
        .map(|n| {
            live.counter(&metric_names::node_jobs_completed(n))
                .expect("per-node counter exists")
        })
        .sum();
    assert_eq!(per_node, 12, "node counters partition the completed jobs");
    // All permits were released on completion, so no tenant is in-system.
    assert_eq!(live.gauge(metric_names::TENANTS_ACTIVE), Some(0.0));

    // The shutdown report aggregates from the same registry the live poll read.
    let report = client.shutdown();
    assert_eq!(report.jobs, 12);
    assert_eq!(report.nodes, 2);
    assert_eq!(report.per_node_jobs.iter().sum::<u64>(), 12);
}

/// Runs the same batch through a runtime wired to a [`ManualClock`] sink under the
/// deterministic-trace contract (1 worker, FIFO) and returns the JSONL export.
fn traced_jsonl() -> String {
    let sink = Arc::new(TraceSink::new(Arc::new(ManualClock::new())));
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 1,
        scheduler: SchedulerPolicy::fifo(),
        trace: Some(sink.clone()),
        ..RuntimeConfig::default()
    });
    let outcome = runtime.run_batch(plans(12));
    assert_eq!(outcome.jobs.len(), 12);
    sink.export_jsonl()
}

#[test]
fn trace_export_is_byte_identical_under_the_deterministic_contract() {
    // ManualClock pins every timestamp, one FIFO worker pins the schedule: the whole
    // JSONL export — timestamps, order, details — is byte-for-byte reproducible.
    let first = traced_jsonl();
    let second = traced_jsonl();
    assert!(!first.is_empty());
    assert_eq!(first, second);
}

#[test]
fn trace_jsonl_round_trips_through_the_shim() {
    let sink = Arc::new(TraceSink::wall());
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 3,
        trace: Some(sink.clone()),
        ..RuntimeConfig::default()
    });
    runtime.run_batch(plans(8));

    let text = sink.export_jsonl();
    let parsed = parse_jsonl(&text).expect("every exported line parses back");
    assert_eq!(parsed, sink.snapshot());
    assert_eq!(text.lines().count(), sink.len());
}

#[test]
fn multi_worker_traces_order_deterministically_per_job() {
    let sink = Arc::new(TraceSink::wall());
    let runtime = SolveRuntime::new(RuntimeConfig {
        workers: 4,
        trace: Some(sink.clone()),
        ..RuntimeConfig::default()
    });
    let outcome = runtime.run_batch(plans(16));

    // However workers interleaved their flushes, the canonical snapshot is sorted
    // by (job_id, seq), each job's seq is contiguous from 0, and each job's
    // timeline starts queue_wait → dequeue.
    let events = sink.snapshot();
    let mut expected_seq = std::collections::HashMap::new();
    for window in events.windows(2) {
        assert!((window[0].job_id, window[0].seq) < (window[1].job_id, window[1].seq));
    }
    for event in &events {
        let next = expected_seq.entry(event.job_id).or_insert(0u32);
        assert_eq!(event.seq, *next, "job {} has a seq gap", event.job_id);
        *next += 1;
        if event.seq == 0 {
            assert_eq!(event.kind, SpanKind::QueueWait);
        }
        if event.seq == 1 {
            assert_eq!(event.kind, SpanKind::Dequeue);
        }
    }
    assert_eq!(expected_seq.len(), outcome.jobs.len());
    let traced_jobs: std::collections::HashSet<u64> = expected_seq.keys().copied().collect();
    let run_jobs: std::collections::HashSet<u64> = outcome.jobs.iter().map(|j| j.job_id).collect();
    assert_eq!(traced_jobs, run_jobs);
}
