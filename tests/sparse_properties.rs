//! Property tests on the sparse substrate: format conversions and SpMV kernels must
//! agree with each other for arbitrary sparse matrices, and the block-major layout must
//! preserve the matrix exactly.

use proptest::prelude::*;
use refloat::prelude::*;
use refloat::sparse::mm;

/// Strategy: an arbitrary small sparse matrix given as dimension + triplets.
fn arb_matrix() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (4usize..40).prop_flat_map(|n| {
        let entries = proptest::collection::vec(
            (0..n, 0..n, prop_oneof![-1e6f64..1e6, -1e-6f64..1e-6]),
            1..200,
        );
        (Just(n), entries)
    })
}

fn build(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for &(r, c, v) in entries {
        if v != 0.0 {
            coo.push(r, c, v);
        }
    }
    coo.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_coo_and_blocked_spmv_agree((n, entries) in arb_matrix(), bexp in 1u32..5) {
        let csr = build(n, &entries);
        let coo = csr.to_coo();
        let blocked = BlockedMatrix::from_csr(&csr, bexp).unwrap();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) / 13.0 - 0.4).collect();
        let mut y_csr = vec![0.0; n];
        let mut y_coo = vec![0.0; n];
        let mut y_blk = vec![0.0; n];
        csr.spmv_into(&x, &mut y_csr);
        coo.spmv_into(&x, &mut y_coo);
        blocked.spmv_into(&x, &mut y_blk);
        for i in 0..n {
            prop_assert!((y_csr[i] - y_coo[i]).abs() <= 1e-9 * y_csr[i].abs().max(1e-12));
            prop_assert!((y_csr[i] - y_blk[i]).abs() <= 1e-9 * y_csr[i].abs().max(1e-12));
        }
    }

    #[test]
    fn blocking_round_trips_exactly((n, entries) in arb_matrix(), bexp in 1u32..6) {
        let csr = build(n, &entries);
        let blocked = BlockedMatrix::from_csr(&csr, bexp).unwrap();
        prop_assert_eq!(blocked.nnz(), csr.nnz());
        prop_assert_eq!(blocked.to_csr(), csr);
    }

    #[test]
    fn matrix_market_round_trips_exactly((n, entries) in arb_matrix()) {
        let csr = build(n, &entries);
        let mut text = Vec::new();
        mm::write_coo_to_writer(&mut text, &csr.to_coo(), "property test").unwrap();
        let parsed = mm::read_coo_from_str(std::str::from_utf8(&text).unwrap()).unwrap();
        prop_assert_eq!(parsed.to_csr(), csr);
    }

    // write -> read identity across every symmetry class and field the reader
    // supports, with randomized comment/blank-line placement between header, size
    // line and entries.
    #[test]
    fn matrix_market_round_trips_all_symmetries_and_fields(
        (n, entries) in arb_matrix(),
        sym_pick in 0u8..3,
        field_pick in 0u8..3,
        comment_style in 0u8..4,
    ) {
        use mm::{Field, Symmetry};
        let symmetry = [Symmetry::General, Symmetry::Symmetric, Symmetry::SkewSymmetric]
            [sym_pick as usize];
        let field = [Field::Real, Field::Integer, Field::Pattern][field_pick as usize];

        // Build a matrix with the claimed symmetry and values representable in the
        // claimed field (integers for Integer, 1.0 for Pattern).
        let mut coo = CooMatrix::new(n, n);
        let mut seen = std::collections::HashSet::new();
        for &(r, c, v) in &entries {
            let v = match field {
                Field::Real => v,
                Field::Integer => (v.rem_euclid(1e3)).round() + 1.0,
                Field::Pattern => 1.0,
            };
            if v == 0.0 {
                continue;
            }
            match symmetry {
                Symmetry::General => {
                    if seen.insert((r, c)) {
                        coo.push(r, c, v);
                    }
                }
                Symmetry::Symmetric => {
                    if seen.insert((r.min(c), r.max(c))) {
                        coo.push(r, c, v);
                        if r != c {
                            coo.push(c, r, v);
                        }
                    }
                }
                Symmetry::SkewSymmetric => {
                    if r != c && seen.insert((r.min(c), r.max(c))) {
                        // A pattern file has no sign token, so the implied +1 always
                        // sits on the stored (lower) triangle: canonicalize the
                        // orientation or the sign could not survive the round-trip.
                        let (r, c) = if field == Field::Pattern {
                            (r.max(c), r.min(c))
                        } else {
                            (r, c)
                        };
                        coo.push(r, c, v);
                        coo.push(c, r, -v);
                    }
                }
            }
        }

        let comment = match comment_style {
            0 => String::new(),
            1 => "one line".to_string(),
            2 => "first\nsecond\nthird".to_string(),
            _ => "spaced\n\nlines".to_string(),
        };
        let mut buf = Vec::new();
        mm::write_coo_as(&mut buf, &coo, field, symmetry, &comment).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // Blank lines and late comments between the size line and the entries (and at
        // the end) must be tolerated by the reader.
        if comment_style == 3 {
            let size_end = text
                .match_indices('\n')
                .nth(text.lines().position(|l| !l.starts_with('%')).unwrap())
                .map(|(i, _)| i + 1)
                .unwrap_or(text.len());
            text.insert_str(size_end, "\n% late comment\n\n");
            text.push('\n');
        }
        let parsed = mm::read_coo_from_str(&text).unwrap();
        prop_assert_eq!(parsed.to_csr(), coo.to_csr());
    }

    #[test]
    fn transpose_preserves_spmv_duality((n, entries) in arb_matrix()) {
        // (A x)ᵀ y == xᵀ (Aᵀ y) for all x, y — a classic duality check.
        let a = build(n, &entries);
        let at = a.transpose();
        let x: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i % 3) as f64) + 0.5).collect();
        let ax = a.spmv(&x);
        let aty = at.spmv(&y);
        let lhs = refloat::sparse::vecops::dot(&ax, &y);
        let rhs = refloat::sparse::vecops::dot(&x, &aty);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.abs().max(1e-9));
    }
}
