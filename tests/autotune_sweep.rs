//! Nightly-style full sweep of the format auto-tuner: every workload class ×
//! several tolerances, with the ranking/verification invariants checked at each
//! point.
//!
//! The quick invariants are covered by the unit tests in `refloat_core::autotune` and
//! the runtime integration tests; this sweep re-plans from scratch at every
//! (workload, tolerance) point — an eigen estimation plus verification solves each —
//! which is seconds in release but minutes under the debug profile `cargo test` uses.

use refloat::core::autotune::{plan_format, AutotuneConfig};
use refloat::matgen::generators;
use refloat::sparse::CsrMatrix;

fn workloads() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        ("poisson", generators::laplacian_2d(32, 32, 0.3).to_csr()),
        (
            "mass-1e-12",
            generators::mass_matrix_3d(8, 8, 8, 1e-12, 0.8, 5).to_csr(),
        ),
        (
            "ring-1e12",
            generators::sphere_ring_3regular(4096, 1e12, 0.1894).to_csr(),
        ),
        (
            "aniso",
            generators::anisotropic_9pt(48, 48, 1.0, 0.05, 1e-3).to_csr(),
        ),
    ]
}

// Ignored under the default `cargo test` run to keep the CI budget: the sweep costs
// minutes in the debug profile.  CI runs it from the already-built *release* test
// binary (`cargo test --release -- --include-ignored`), where it takes seconds; run
// `cargo test -q -- --include-ignored` locally for the debug-profile version.
#[test]
#[ignore = "full sweep (~minutes in debug); CI runs it in release via --include-ignored"]
fn autotune_sweep_across_workloads_and_tolerances() {
    for (name, a) in &workloads() {
        let mut previous_cycles = 0u64;
        for tolerance in [1e-4, 1e-6, 1e-8] {
            let plan = plan_format(a, &AutotuneConfig::new(tolerance, 4));
            assert!(
                !plan.fallback,
                "{name} @ {tolerance:.0e}: expected a surviving candidate"
            );
            assert!(
                plan.chosen.measured_convergent(tolerance),
                "{name} @ {tolerance:.0e}: chosen {} measured {:?}",
                plan.chosen.config,
                plan.chosen.measured_residual
            );
            // Every predicted-convergent candidate cheaper than the pick must have
            // been tried and failed — the tuner never skips a cheaper option.
            for c in &plan.candidates {
                if c.predicted_convergent && c.cycles_per_spmv < plan.chosen.cycles_per_spmv {
                    assert!(
                        c.measured_residual.is_some_and(|r| r > tolerance),
                        "{name} @ {tolerance:.0e}: cheaper candidate {} skipped \
                         without a failed trial",
                        c.config
                    );
                }
            }
            // The pick always undercuts the re-based FP64 classical point.
            let fp64 = plan
                .candidates
                .iter()
                .find(|c| (c.config.e, c.config.f) == (11, 52))
                .expect("FP64 point in the grid");
            assert!(plan.chosen.cycles_per_spmv < fp64.cycles_per_spmv);
            // Tightening the tolerance never makes the pick cheaper per SpMV.
            assert!(
                plan.chosen.cycles_per_spmv >= previous_cycles,
                "{name}: pick got cheaper as the tolerance tightened"
            );
            previous_cycles = plan.chosen.cycles_per_spmv;
        }
    }
}
