//! Workspace-level tests of the multi-node cluster runtime: node attribution,
//! numeric invariance across node/worker counts, typed admission shedding, quota
//! refunds across the router boundary, and open-loop trace reproducibility.

use refloat::prelude::*;
use refloat::runtime::SubmitError;

/// A small mixed catalog: repeat fingerprints (affinity traffic) plus a
/// BiCGSTAB lane.
fn catalog() -> Vec<(MatrixHandle, ReFloatConfig, SolverKind)> {
    let gen = &refloat::matgen::generators::laplacian_2d;
    vec![
        (
            MatrixHandle::new("poisson-16", gen(16, 16, 0.3).to_csr()),
            ReFloatConfig::new(4, 3, 8, 3, 8),
            SolverKind::Cg,
        ),
        (
            MatrixHandle::new("poisson-12", gen(12, 12, 0.4).to_csr()),
            ReFloatConfig::new(5, 3, 3, 3, 8),
            SolverKind::Cg,
        ),
        (
            MatrixHandle::new(
                "convdiff-10",
                refloat::matgen::generators::convection_diffusion_2d(10, 10, 6.0).to_csr(),
            ),
            ReFloatConfig::new(4, 3, 8, 3, 8),
            SolverKind::BiCgStab,
        ),
    ]
}

fn trace_plans(count: usize) -> Vec<SolvePlan> {
    let catalog = catalog();
    (0..count)
        .map(|i| {
            // Deterministic skew: two thirds of the traffic hits the hot matrix.
            let which = if i % 3 != 2 { 0 } else { 1 + (i / 3) % 2 };
            let (handle, format, solver) = &catalog[which];
            SolvePlan::new(format!("tenant-{}", i % 5), handle.clone(), *format)
                .solver(*solver)
                .build()
                .expect("valid plan")
        })
        .collect()
}

/// Submits every plan, waits in order, and returns the per-job numeric signature
/// (job id, iterations, solution bits) plus the shutdown report.
fn serve(
    client: SolveClient,
    plans: Vec<SolvePlan>,
) -> (Vec<(u64, usize, Vec<u64>)>, RuntimeReport) {
    let tickets: Vec<SolveTicket> = plans
        .into_iter()
        .map(|plan| client.submit(plan).expect("admitted"))
        .collect();
    let mut signatures = Vec::new();
    for ticket in tickets {
        let outcome = ticket.wait().completed().expect("completed");
        assert!(outcome.result.converged());
        signatures.push((
            outcome.job_id,
            outcome.result.iterations,
            outcome.result.x.iter().map(|v| v.to_bits()).collect(),
        ));
    }
    (signatures, client.shutdown())
}

#[test]
fn a_cluster_serves_a_trace_and_attributes_every_job_to_a_node() {
    let client = ClusterRuntime::start(ClusterConfig::uniform(
        3,
        RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        },
    ));
    assert_eq!(client.nodes(), 3);
    let (signatures, report) = serve(client, trace_plans(36));
    assert_eq!(signatures.len(), 36);
    assert_eq!(report.jobs, 36);
    assert_eq!(report.nodes, 3);
    assert_eq!(report.workers, 6);
    assert_eq!(
        report.per_node_jobs.iter().sum::<u64>(),
        36,
        "every job is attributed to exactly one node: {:?}",
        report.per_node_jobs
    );
    assert_eq!(report.shed_overloaded, 0);
    assert_eq!(report.shed_quota, 0);
    // The affinity router concentrates each matrix on few nodes, so per-node
    // caches still hit on the skewed trace.
    assert!(
        report.hit_rate() > 0.5,
        "affinity routing keeps per-node caches warm, hit rate {:.2}",
        report.hit_rate()
    );
}

#[test]
fn numeric_results_are_bitwise_invariant_across_node_and_worker_counts() {
    let single = {
        let client = SolveRuntime::start(RuntimeConfig {
            workers: 1,
            ..RuntimeConfig::default()
        });
        serve(client, trace_plans(24)).0
    };
    for (nodes, workers) in [(2usize, 1usize), (2, 3), (3, 2)] {
        let client = ClusterRuntime::start(ClusterConfig::uniform(
            nodes,
            RuntimeConfig {
                workers,
                ..RuntimeConfig::default()
            },
        ));
        let (signatures, _) = serve(client, trace_plans(24));
        assert_eq!(
            signatures, single,
            "{nodes} nodes x {workers} workers must match the 1x1 runtime bitwise"
        );
    }
}

#[test]
fn the_in_system_bound_sheds_typed_overloaded_errors() {
    let client = ClusterRuntime::start(ClusterConfig {
        nodes: 1,
        node: RuntimeConfig {
            workers: 1,
            ..RuntimeConfig::default()
        },
        chips_per_node: Vec::new(),
        admission: AdmissionConfig {
            max_in_system: Some(2),
            per_tenant_quota: None,
        },
        router: Default::default(),
    });
    // Two slow jobs fill the system (one running on the only worker, one queued;
    // the matrix is big enough that neither finishes before the probe below)...
    let a = refloat::matgen::generators::laplacian_2d(24, 24, 0.3).to_csr();
    let handle = MatrixHandle::new("big-poisson", a);
    let blocker = || {
        SolvePlan::new("carol", handle.clone(), ReFloatConfig::new(4, 3, 8, 3, 8))
            .build()
            .expect("valid plan")
    };
    let blockers: Vec<SolveTicket> = (0..2)
        .map(|_| client.submit(blocker()).expect("under the bound"))
        .collect();
    // ...so the third offered job is shed with the typed overload error, and the
    // rejected plan comes back to the caller for retry/downgrade.
    match client.submit(blocker()) {
        Err(SubmitError::Overloaded {
            plan,
            in_system,
            capacity,
        }) => {
            assert_eq!(in_system, 2);
            assert_eq!(capacity, 2);
            assert!(!plan.tenant().is_empty(), "the plan is returned intact");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    for ticket in blockers {
        ticket.wait().completed().expect("blockers complete");
    }
    let report = client.shutdown();
    assert_eq!(report.jobs, 2);
    assert_eq!(report.shed_overloaded, 1);
}

#[test]
fn cancel_refunds_a_tenant_quota_slot_across_the_router_boundary() {
    let client = ClusterRuntime::start(ClusterConfig {
        nodes: 1,
        node: RuntimeConfig {
            workers: 1,
            ..RuntimeConfig::default()
        },
        chips_per_node: Vec::new(),
        admission: AdmissionConfig {
            max_in_system: None,
            per_tenant_quota: Some(2),
        },
        router: Default::default(),
    });
    let a = refloat::matgen::generators::laplacian_2d(24, 24, 0.3).to_csr();
    let handle = MatrixHandle::new("big-poisson", a);
    let plan = |tenant: &str| {
        SolvePlan::new(tenant, handle.clone(), ReFloatConfig::new(4, 3, 8, 3, 8))
            .build()
            .expect("valid plan")
    };
    // alice fills her quota: one job runs, one queues.
    let running = client.submit(plan("alice")).expect("first slot");
    let queued = client.submit(plan("alice")).expect("second slot");
    match client.submit(plan("alice")) {
        Err(SubmitError::QuotaExceeded {
            in_system, quota, ..
        }) => {
            assert_eq!(in_system, 2);
            assert_eq!(quota, 2);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // Another tenant is not starved by alice's quota.
    let bob = client.submit(plan("bob")).expect("per-tenant isolation");
    // Cancelling alice's queued job refunds her slot through the router, so the
    // next submit is admitted again.
    assert!(queued.cancel(), "a queued job can still be recalled");
    assert!(matches!(queued.wait(), TicketOutcome::Cancelled));
    let retried = client.submit(plan("alice")).expect("refunded slot");
    for ticket in [running, bob, retried] {
        ticket.wait().completed().expect("completes");
    }
    let report = client.shutdown();
    assert_eq!(report.jobs, 3);
    assert_eq!(report.cancelled_jobs, 1);
    assert_eq!(report.shed_quota, 1);
}

#[test]
fn an_open_loop_trace_replays_to_the_same_digest_on_any_cluster_shape() {
    use refloat::matgen::traffic::{generate, ArrivalProcess, TrafficSpec};
    let spec = TrafficSpec {
        jobs: 18,
        tenants: 4,
        tenant_skew: 1.0,
        arrivals: ArrivalProcess::Bursty {
            rate_per_s: 50.0,
            mean_burst: 4.0,
            within_burst_gap_s: 1e-4,
        },
        seed: 99,
    };
    let catalog = catalog();
    let weights: Vec<f64> = (0..catalog.len()).map(|r| 1.0 / (r + 1) as f64).collect();
    let trace = generate(&spec, &weights);
    assert_eq!(
        trace,
        generate(&spec, &weights),
        "traces are bitwise-reproducible"
    );
    let serve_trace = |nodes: usize, workers: usize| {
        let client = ClusterRuntime::start(ClusterConfig::uniform(
            nodes,
            RuntimeConfig {
                workers,
                ..RuntimeConfig::default()
            },
        ));
        let plans: Vec<SolvePlan> = trace
            .iter()
            .map(|arrival| {
                let (handle, format, solver) = &catalog[arrival.item];
                SolvePlan::new(
                    format!("tenant-{}", arrival.tenant),
                    handle.clone(),
                    *format,
                )
                .solver(*solver)
                .build()
                .expect("valid plan")
            })
            .collect();
        serve(client, plans).0
    };
    let reference = serve_trace(1, 2);
    assert_eq!(serve_trace(2, 1), reference);
    assert_eq!(serve_trace(3, 2), reference);
}
