//! Consistency checks between independent implementations of the same quantity:
//! the functional ReFloat operator vs the bit-exact crossbar pipeline, the storage model
//! vs the encoded blocks, and the locality analysis vs the format defaults.

use refloat::core::locality::exponent_locality;
use refloat::core::memory;
use refloat::prelude::*;
use refloat::sim::engine::ProcessingEngine;

#[test]
fn hardware_pipeline_and_functional_operator_agree_on_real_workload_blocks() {
    // Take real blocks from a crystm-like workload and compare the processing-engine
    // result (bit-sliced integer crossbars) against the functional decoded-f64 product.
    let a = refloat::matgen::generators::mass_matrix_3d(6, 6, 6, 1e-12, 0.8, 9).to_csr();
    let format = ReFloatConfig::new(4, 3, 3, 3, 8);
    let blocked = BlockedMatrix::from_csr(&a, format.b).unwrap();
    let engine = ProcessingEngine::new(format);
    let x: Vec<f64> = (0..a.ncols())
        .map(|i| (i as f64 * 0.17).sin() + 1.1)
        .collect();
    let bs = format.block_size();

    let mut checked = 0;
    for block in blocked.blocks().iter().take(20) {
        let encoded = refloat::core::block::ReFloatBlock::encode(block, &format);
        let seg_lo = block.block_col * bs;
        let seg_hi = (seg_lo + bs).min(x.len());
        let hw = engine.block_mvm(&encoded, &x[seg_lo..seg_hi]);
        let reference = engine.reference_block_mvm(&encoded, &x[seg_lo..seg_hi]);
        for (h, r) in hw.segment.iter().zip(reference.iter()) {
            assert!(
                (h - r).abs() <= 1e-9 * r.abs().max(1e-300),
                "pipeline {h} vs functional {r}"
            );
        }
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn storage_model_matches_the_encoded_matrix_bit_count() {
    let a = refloat::matgen::generators::laplacian_2d(40, 40, 0.1).to_csr();
    let format = ReFloatConfig::new(5, 3, 3, 3, 8);
    let blocked = BlockedMatrix::from_csr(&a, format.b).unwrap();
    let encoded = ReFloatMatrix::from_blocked(&blocked, format);
    // Two independent accountings of the same storage.
    assert_eq!(
        encoded.storage_bits(),
        memory::refloat_storage_bits(&blocked, &format)
    );
    let ratio = memory::memory_overhead_ratio(&blocked, &format);
    assert!(ratio > 0.0 && ratio < 0.5);
}

#[test]
fn exponent_locality_explains_why_three_offset_bits_suffice() {
    // The Fig. 3(d) claim chained end-to-end: per-block exponent spreads of the mass
    // matrix analogue fit in 3 offset bits, therefore the only quantization error left
    // is fraction truncation, therefore the e=3 matrix encoding has bounded error.
    let a = refloat::matgen::generators::mass_matrix_3d(8, 8, 8, 1e-12, 0.8, 5).to_csr();
    let blocked = BlockedMatrix::from_csr(&a, 7).unwrap();
    let report = exponent_locality(&blocked);
    assert!(
        report.max_block_bits <= 4,
        "block locality = {}",
        report.max_block_bits
    );

    // Give the format one offset bit more than the locality analysis reports (the
    // per-block base is the rounded *mean*, not the midpoint, so the worst offset can
    // reach the full block spread): the remaining element error must then be pure
    // fraction truncation.
    let format = ReFloatConfig::new(7, report.max_block_bits + 1, 8, 3, 8);
    let encoded = ReFloatMatrix::from_blocked(&blocked, format);
    let quantized = encoded.to_quantized_csr();
    let mut worst: f64 = 0.0;
    for (r, c, v) in a.iter() {
        let q = quantized.get(r, c);
        worst = worst.max(((q - v) / v).abs());
    }
    assert!(
        worst <= 2.0f64.powi(-8) + 1e-12,
        "worst relative element error {worst} exceeds the fraction bound"
    );
}

#[test]
fn matrix_market_roundtrip_preserves_solver_behaviour() {
    let a = refloat::matgen::generators::wathen(6, 6, 3).to_csr();
    let dir = std::env::temp_dir().join("refloat_integration_mm");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wathen6.mtx");
    refloat::sparse::mm::write_coo(&path, &a.to_coo(), "integration test").unwrap();
    let back = refloat::sparse::mm::read_coo(&path).unwrap().to_csr();
    assert_eq!(a, back);

    let b = vec![1.0; a.nrows()];
    let cfg = SolverConfig::relative(1e-8);
    let r1 = cg(&mut a.clone(), &b, &cfg);
    let r2 = cg(&mut back.clone(), &b, &cfg);
    assert_eq!(r1.iterations, r2.iterations);
}

#[test]
fn table_v_small_workloads_generate_and_block_consistently() {
    // The smallest Table V workload end-to-end through the blocking invariants.
    let w = Workload::Crystm01;
    let csr = w.generate_csr(1);
    let blocked = BlockedMatrix::from_csr(&csr, 7).unwrap();
    assert_eq!(blocked.nnz(), csr.nnz());
    assert_eq!(blocked.to_csr(), csr);
    // Cluster requirement = non-empty blocks; must be well below the ReFloat capacity
    // (21845) for this small matrix, as §VI.B assumes.
    assert!(blocked.num_blocks() < 21_845);
}

#[test]
fn autotune_cost_model_matches_reram_sim_cost_over_the_whole_grid() {
    // `refloat_core::autotune` restates the Eq. 2/3 closed forms because it sits
    // *below* `reram-sim` in the dependency graph; this test pins the two
    // implementations together so they can never drift.
    use refloat::core::autotune;
    use refloat::sim::cost;

    for config in autotune::candidate_grid(7) {
        assert_eq!(
            autotune::crossbars_per_cluster(config.e, config.f),
            cost::crossbars_per_cluster(config.e, config.f),
            "crossbars per cluster diverge at {config}"
        );
        assert_eq!(
            autotune::cycles_per_block_mvm(config.e, config.f, config.ev, config.fv),
            cost::cycle_count_eq3(config.e, config.f, config.ev, config.fv),
            "Eq. 3 cycles diverge at {config}"
        );
    }
    // The paper's headline points hold through the autotune mirror too.
    assert_eq!(autotune::cycles_per_block_mvm(11, 52, 11, 52), 4201);
    assert_eq!(autotune::cycles_per_block_mvm(3, 3, 3, 8), 28);
    assert_eq!(autotune::crossbars_per_cluster(3, 3), 12);
}
